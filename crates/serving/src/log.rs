//! [`DeltaLog`]: the replayable update history behind the answer service.
//!
//! Every ingested batch is appended with a monotone **sequence number**;
//! offset `base_seq` carries a full graph snapshot (labels, edges,
//! attributes). That pair is the whole recovery story:
//!
//! * **replay from 0** — build the base graph, apply every entry in order:
//!   a fresh service lands on byte-identical versioned answers;
//! * **late join at `s`** — materialize [`DeltaLog::graph_at`]`(s)` (or
//!   receive a snapshot from a live service), then consume entries with
//!   `seq > s`;
//! * **compaction** — once every consumer has passed offset `s`,
//!   [`DeltaLog::compact_to`]`(s)` folds the prefix into the base
//!   snapshot, bounding retention without ever tearing an answer.
//!
//! Persistence is JSON-lines through the workspace serde stubs
//! ([`gpm_graph::json`]): a header line holding the base snapshot and its
//! offset, then one line per batch — append-friendly, diffable, and
//! attribute-complete (the binary snapshot format drops attribute tables,
//! which replay cannot afford).

use gpm_graph::json::{delta_from_value, graph_from_value, graph_to_value};
use gpm_graph::{DiGraph, DynGraph, GraphDelta};
use gpm_telemetry::Histogram;
use serde::{Serialize, Value};

use crate::service::ServingError;

/// One appended batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Sequence number (the graph state *after* this batch).
    pub seq: u64,
    /// The batch itself.
    pub delta: GraphDelta,
}

/// Where the last [`DeltaLog::save`] wrote, so the next save can append
/// just the new suffix instead of rewriting the file wholesale.
#[derive(Debug)]
struct SaveCursor {
    path: std::path::PathBuf,
    /// The log's base offset when the file was (re)written — a changed
    /// base (compaction) invalidates the file's prefix.
    base_seq: u64,
    /// Newest sequence number the file holds.
    head_seq: u64,
}

/// An append-only, replayable sequence of [`GraphDelta`] batches anchored
/// to a base graph snapshot. See the module docs.
#[derive(Debug)]
pub struct DeltaLog {
    base: DiGraph,
    base_seq: u64,
    entries: Vec<LogEntry>,
    /// Persistence cursor of the last [`Self::save`] (`None` until the
    /// first save, and reset by [`Self::compact_to`]).
    saved: Option<SaveCursor>,
    /// When attached, every fsynced write (append or wholesale) records
    /// its wall time here — `gpm_log_fsync_seconds` in the serving
    /// stack's telemetry. Bare logs carry `None` and pay nothing.
    fsync_hist: Option<Histogram>,
    /// Cumulative bytes fsynced to disk across every save of this log —
    /// the `gpm_delta_log_bytes` gauge.
    persisted_bytes: u64,
    /// When the last successful fsync finished — the freshness input of
    /// the health model's persistence staleness check.
    last_fsync: Option<std::time::Instant>,
}

impl Clone for DeltaLog {
    /// A clone does **not** inherit the persistence cursor: two logical
    /// writers appending to one file would interleave duplicate suffixes
    /// (each believing it owns the tail). The clone's first save rewrites
    /// its target wholesale and owns the file from there.
    fn clone(&self) -> Self {
        DeltaLog {
            base: self.base.clone(),
            base_seq: self.base_seq,
            entries: self.entries.clone(),
            saved: None,
            fsync_hist: self.fsync_hist.clone(),
            persisted_bytes: 0,
            last_fsync: None,
        }
    }
}

impl DeltaLog {
    /// A log whose offset 0 is `base`.
    pub fn new(base: &DiGraph) -> Self {
        Self::at_offset(base, 0)
    }

    /// A log anchored mid-stream: `base` is the graph state at `base_seq`
    /// (a late joiner's starting snapshot).
    pub fn at_offset(base: &DiGraph, base_seq: u64) -> Self {
        DeltaLog {
            base: base.clone(),
            base_seq,
            entries: Vec::new(),
            saved: None,
            fsync_hist: None,
            persisted_bytes: 0,
            last_fsync: None,
        }
    }

    /// Attaches the histogram every fsynced write records into (the
    /// serving layer passes its `gpm_log_fsync_seconds` handle).
    pub fn set_fsync_histogram(&mut self, h: Histogram) {
        self.fsync_hist = Some(h);
    }

    /// Cumulative bytes fsynced to disk by [`Self::save`] over this log's
    /// lifetime (0 for a never-persisted log).
    pub fn persisted_bytes(&self) -> u64 {
        self.persisted_bytes
    }

    /// Time since the last **successful** fsync, `None` for a log that
    /// has never persisted — the staleness signal health checks read.
    pub fn fsync_age(&self) -> Option<std::time::Duration> {
        self.last_fsync.map(|t| t.elapsed())
    }

    /// Entries appended since the last save — 0 for a clean log; equal to
    /// [`Self::len`] for a never-persisted one. Staleness only matters
    /// while this is nonzero (a quiet service has nothing to lose).
    pub fn unpersisted_entries(&self) -> usize {
        match &self.saved {
            Some(s) => (self.head_seq() - s.head_seq) as usize,
            None => self.entries.len(),
        }
    }

    /// The anchored snapshot (graph state at [`Self::base_seq`]).
    pub fn base(&self) -> &DiGraph {
        &self.base
    }

    /// Offset of the anchored snapshot.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Sequence number of the newest appended batch (== `base_seq` while
    /// empty).
    pub fn head_seq(&self) -> u64 {
        self.base_seq + self.entries.len() as u64
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends one batch, returning its sequence number.
    pub fn append(&mut self, delta: GraphDelta) -> u64 {
        let seq = self.head_seq() + 1;
        self.entries.push(LogEntry { seq, delta });
        seq
    }

    /// All retained entries, ascending by `seq`.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Retained entries with `seq > after` — what a consumer that has
    /// processed offset `after` still needs. Errors if the log no longer
    /// retains that suffix (`after` below the base offset) or has never
    /// reached it (`after` beyond the head — a caught-up consumer passes
    /// exactly `head_seq` and gets an empty slice, but anything further
    /// means the consumer and this log disagree about history).
    pub fn entries_after(&self, after: u64) -> Result<&[LogEntry], ServingError> {
        if after < self.base_seq {
            return Err(ServingError::OffsetCompacted { seq: after, retained_from: self.base_seq });
        }
        if after > self.head_seq() {
            return Err(ServingError::OffsetInFuture { seq: after, head: self.head_seq() });
        }
        Ok(&self.entries[(after - self.base_seq) as usize..])
    }

    /// Materializes the graph state at offset `seq` by replaying the
    /// retained prefix onto the base snapshot.
    pub fn graph_at(&self, seq: u64) -> Result<DiGraph, ServingError> {
        if seq < self.base_seq {
            return Err(ServingError::OffsetCompacted { seq, retained_from: self.base_seq });
        }
        if seq > self.head_seq() {
            return Err(ServingError::OffsetInFuture { seq, head: self.head_seq() });
        }
        if seq == self.base_seq {
            return Ok(self.base.clone());
        }
        let mut g = DynGraph::from_digraph(&self.base);
        for entry in &self.entries[..(seq - self.base_seq) as usize] {
            g.apply(&entry.delta).map_err(ServingError::Graph)?;
        }
        Ok(g.snapshot())
    }

    /// Folds every entry with `seq <= upto` into the base snapshot and
    /// drops it — retention bookkeeping for long-lived services. Offsets
    /// below `upto` become unservable ([`ServingError::OffsetCompacted`]).
    pub fn compact_to(&mut self, upto: u64) -> Result<(), ServingError> {
        let upto = upto.min(self.head_seq());
        if upto <= self.base_seq {
            return Ok(()); // nothing retained below upto anyway
        }
        self.base = self.graph_at(upto)?;
        self.entries.drain(..(upto - self.base_seq) as usize);
        self.base_seq = upto;
        // Entries carry absolute seqs, so the suffix needs no re-numbering.
        debug_assert!(self.entries.first().is_none_or(|e| e.seq == self.base_seq + 1));
        // A persisted file's header and prefix are now stale: the next
        // save must rewrite wholesale.
        self.saved = None;
        Ok(())
    }

    // ------------------------------------------------------- persistence

    /// Serializes the whole log as JSON-lines: a header line with the
    /// base snapshot, then one line per entry.
    pub fn to_json_lines(&self) -> String {
        let header = Value::Object(vec![
            ("gpm_delta_log".into(), 1u32.to_value()),
            ("base_seq".into(), self.base_seq.to_value()),
            ("base".into(), graph_to_value(&self.base)),
        ]);
        let mut out = serde_json::to_string(&header).expect("stub never fails");
        out.push('\n');
        for entry in &self.entries {
            out.push_str(&entry_line(entry));
            out.push('\n');
        }
        out
    }

    /// Parses a log serialized by [`Self::to_json_lines`]. Sequence
    /// numbers must be contiguous from the header's `base_seq`.
    pub fn from_json_lines(text: &str) -> Result<Self, ServingError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| ServingError::corrupt("empty log"))?;
        let header: Value =
            serde_json::from_str(header).map_err(|e| ServingError::corrupt(e.to_string()))?;
        if header.get("gpm_delta_log").and_then(Value::as_u64) != Some(1) {
            return Err(ServingError::corrupt("missing/unsupported log header"));
        }
        let base_seq = header
            .get("base_seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| ServingError::corrupt("bad base_seq"))?;
        let base = graph_from_value(
            header.get("base").ok_or_else(|| ServingError::corrupt("missing base snapshot"))?,
        )
        .map_err(ServingError::Graph)?;
        let mut log = DeltaLog::at_offset(&base, base_seq);
        for line in lines {
            let v: Value =
                serde_json::from_str(line).map_err(|e| ServingError::corrupt(e.to_string()))?;
            let seq = v
                .get("seq")
                .and_then(Value::as_u64)
                .ok_or_else(|| ServingError::corrupt("bad seq"))?;
            let delta = delta_from_value(&v).map_err(ServingError::Graph)?;
            let assigned = log.append(delta);
            if assigned != seq {
                return Err(ServingError::corrupt(format!(
                    "non-contiguous log: expected seq {assigned}, found {seq}"
                )));
            }
        }
        Ok(log)
    }

    /// Persists the log to a file — **appending** when it can.
    ///
    /// The first save of a path (and any save after [`Self::compact_to`],
    /// a different path, or an externally deleted file) writes the full
    /// JSON-lines form. Every later save appends only the entries past
    /// the last persisted sequence number and fsyncs them — the persist
    /// cost of a long-lived service is proportional to what changed, not
    /// to the whole retained history. The file contents are identical to
    /// a wholesale [`Self::to_json_lines`] either way.
    pub fn save(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), ServingError> {
        let path = path.as_ref();
        let head = self.head_seq();
        let appendable = self.saved.as_ref().is_some_and(|s| {
            s.path == path && s.base_seq == self.base_seq && s.head_seq <= head && path.exists()
        });
        if appendable {
            let from = self.saved.as_ref().expect("checked above").head_seq;
            let mut suffix = String::new();
            for entry in &self.entries[(from - self.base_seq) as usize..] {
                suffix.push_str(&entry_line(entry));
                suffix.push('\n');
            }
            if !suffix.is_empty() {
                if let Err(e) = self.timed_fsync(|| append_synced(path, suffix.as_bytes())) {
                    // The file may hold a torn suffix now: drop the cursor
                    // so a retried save rewrites wholesale instead of
                    // appending the same entries after the partial ones.
                    self.saved = None;
                    return Err(ServingError::corrupt(format!("append log: {e}")));
                }
                self.persisted_bytes += suffix.len() as u64;
            }
            self.last_fsync = Some(std::time::Instant::now());
            self.saved.as_mut().expect("checked above").head_seq = head;
            return Ok(());
        }
        let full = self.to_json_lines();
        self.timed_fsync(|| write_synced(path, full.as_bytes()))
            .map_err(|e| ServingError::corrupt(format!("write log: {e}")))?;
        self.persisted_bytes += full.len() as u64;
        self.last_fsync = Some(std::time::Instant::now());
        self.saved =
            Some(SaveCursor { path: path.to_path_buf(), base_seq: self.base_seq, head_seq: head });
        Ok(())
    }

    /// Runs one fsynced write, recording its wall time when a histogram
    /// is attached. Failed writes record too — a stalling disk is
    /// exactly what the latency histogram exists to surface.
    fn timed_fsync(&self, write: impl FnOnce() -> std::io::Result<()>) -> std::io::Result<()> {
        let Some(h) = &self.fsync_hist else {
            return write();
        };
        let t0 = std::time::Instant::now();
        let out = write();
        h.record(t0.elapsed());
        out
    }

    /// Reads a log back from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ServingError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServingError::corrupt(format!("read log: {e}")))?;
        Self::from_json_lines(&text)
    }
}

fn append_synced(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Full rewrite, fsynced like the append path — the base the appends
/// build on must be no less durable than the appends themselves.
fn write_synced(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// One entry's JSON line (no trailing newline) — shared by the wholesale
/// serialization and the appending save so the two always emit identical
/// bytes.
fn entry_line(entry: &LogEntry) -> String {
    let line = Value::Object(vec![
        ("seq".into(), entry.seq.to_value()),
        ("ops".into(), entry.delta.ops.to_value()),
    ]);
    serde_json::to_string(&line).expect("stub never fails")
}
