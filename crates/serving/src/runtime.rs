//! [`ServiceHandle`]: the long-lived service **loop** as an owned thread.
//!
//! [`AnswerService`] itself is synchronous and deterministic — ideal for
//! tests and embedding. Production ingestion instead runs the service on
//! its own thread: producers submit batches over a channel and move on,
//! subscribers block on their queues from any number of consumer threads,
//! and control-plane calls (subscribe, query, stats) are serialized
//! through the same loop so they always observe a consistency point —
//! never a half-applied batch.

use std::sync::mpsc;
use std::thread::JoinHandle;

use gpm_graph::GraphDelta;

use crate::service::{AnswerService, IngestReport, ServingError};

enum Cmd {
    Ingest(GraphDelta),
    With(Box<dyn FnOnce(&mut AnswerService) + Send>),
    Shutdown,
}

/// The service loop is gone: the handle was shut down (or its thread
/// died) while a controller still held a sender. Control-plane callers
/// treat this as "unready", not as a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopGone;

impl std::fmt::Display for LoopGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service loop is gone")
    }
}

impl std::error::Error for LoopGone {}

/// A cloneable, fallible control-plane handle onto a running service
/// loop — what the admin server and the background auditor hold. Unlike
/// [`ServiceHandle`] it owns nothing: when the loop shuts down, calls
/// return [`LoopGone`] instead of panicking, which doubles as the
/// liveness probe behind `/healthz` (a dead loop is an unready service).
#[derive(Clone)]
pub struct ServiceController {
    tx: mpsc::Sender<Cmd>,
}

impl ServiceController {
    /// Runs `f` on the loop thread between batches and returns its
    /// result, or [`LoopGone`] if the loop has shut down.
    pub fn with<T, F>(&self, f: F) -> Result<T, LoopGone>
    where
        F: FnOnce(&mut AnswerService) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (rtx, rrx) = mpsc::sync_channel(1);
        self.tx
            .send(Cmd::With(Box::new(move |svc| {
                let _ = rtx.send(f(svc));
            })))
            .map_err(|_| LoopGone)?;
        rrx.recv().map_err(|_| LoopGone)
    }

    /// Fire-and-forget ingestion, like [`ServiceHandle::submit`];
    /// reports [`LoopGone`] instead of silently dropping the batch.
    pub fn submit(&self, delta: GraphDelta) -> Result<(), LoopGone> {
        self.tx.send(Cmd::Ingest(delta)).map_err(|_| LoopGone)
    }

    /// `true` while the loop is alive and answering (a round-trip probe,
    /// not just a channel check).
    pub fn is_alive(&self) -> bool {
        self.with(|_| ()).is_ok()
    }
}

/// A handle to a service running on its own thread. Dropping the handle
/// shuts the loop down (joining it); [`Self::shutdown`] does the same and
/// hands the service back for inspection.
pub struct ServiceHandle {
    tx: mpsc::Sender<Cmd>,
    join: Option<JoinHandle<AnswerService>>,
}

impl ServiceHandle {
    /// Moves `service` onto a dedicated loop thread.
    pub fn spawn(mut service: AnswerService) -> Self {
        let (tx, rx) = mpsc::channel();
        let join = std::thread::Builder::new()
            .name("gpm-serving".into())
            .spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Ingest(delta) => {
                            // Rejected batches leave all state (and the log)
                            // unchanged; `ingest` counts them in stats.
                            let _ = service.ingest(&delta);
                        }
                        Cmd::With(f) => f(&mut service),
                        Cmd::Shutdown => break,
                    }
                }
                service
            })
            .expect("spawn serving loop");
        ServiceHandle { tx, join: Some(join) }
    }

    /// Fire-and-forget ingestion: enqueues the batch and returns
    /// immediately (the producer path of the latency bench). Invalid
    /// batches are counted in [`crate::ServiceStats::ingest_errors`].
    pub fn submit(&self, delta: GraphDelta) {
        let _ = self.tx.send(Cmd::Ingest(delta));
    }

    /// A cloneable, fallible control-plane handle onto this loop — hand
    /// these to the admin server and the auditor; they outlive nothing
    /// (calls after shutdown return [`LoopGone`]).
    pub fn controller(&self) -> ServiceController {
        ServiceController { tx: self.tx.clone() }
    }

    /// Synchronous ingestion: blocks until the batch is applied and fanned
    /// out, returning its report.
    pub fn ingest(&self, delta: GraphDelta) -> Result<IngestReport, ServingError> {
        self.with(move |svc| svc.ingest(&delta))
    }

    /// Runs `f` on the loop thread against the service, between batches,
    /// and returns its result — the control plane for subscribe /
    /// unsubscribe / query_at / stats on a live service.
    pub fn with<T, F>(&self, f: F) -> T
    where
        F: FnOnce(&mut AnswerService) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (rtx, rrx) = mpsc::sync_channel(1);
        self.tx
            .send(Cmd::With(Box::new(move |svc| {
                let _ = rtx.send(f(svc));
            })))
            .expect("serving loop alive");
        rrx.recv().expect("serving loop alive")
    }

    /// Current head sequence number.
    pub fn seq(&self) -> u64 {
        self.with(|svc| svc.seq())
    }

    /// One JSON object holding the live service's metrics snapshot and
    /// flight-recorder contents (`{"metrics":…,"flight_recorder":…}`) —
    /// taken on the loop thread, between batches, so it always reflects
    /// a consistency point.
    pub fn telemetry_dump(&self) -> String {
        self.with(|svc| svc.telemetry().dump_json())
    }

    /// Prometheus-style text exposition of the live service's metrics,
    /// taken at a consistency point like [`Self::telemetry_dump`].
    pub fn telemetry_render(&self) -> String {
        self.with(|svc| svc.telemetry().render())
    }

    /// Stops the loop (after draining already-queued commands) and returns
    /// the service.
    pub fn shutdown(mut self) -> AnswerService {
        let _ = self.tx.send(Cmd::Shutdown);
        self.join.take().expect("not yet joined").join().expect("serving loop panicked")
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(Cmd::Shutdown);
            let _ = join.join();
        }
    }
}
