//! Subscriptions: per-consumer bounded queues with newest-wins coalescing.
//!
//! A push tier lives or dies by its slowest consumer. Every subscription
//! owns a bounded queue of [`AnswerUpdate`]s; when a producer would
//! overflow it, the **newest queued** update is replaced by one that
//! carries the latest complete answer and a **rebased diff** — the jump
//! from whatever the consumer will have seen before it straight to the
//! new answer. Consumers therefore always converge on the current answer
//! and can reconcile with a single diff; what they lose under pressure is
//! intermediate history (visible as a `version` gap), never consistency.
//! No queued update is ever mutated in place, so a torn answer cannot be
//! observed.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gpm_core::result::{AnswerDiff, RankedMatch};
use gpm_incremental::PatternId;

use crate::answer::AnswerUpdate;

/// What a subscription is notified about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyMode {
    /// Material changes of the relevance-ranked top-k (`δr` order).
    Relevance,
    /// Material changes of the **diversified** top-k (the greedy
    /// bi-criteria selection with the pattern's configured `λ`).
    Diversified,
}

/// Stable handle of a subscription. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub(crate) u64);

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

pub(crate) struct SubQueue {
    updates: VecDeque<AnswerUpdate>,
    capacity: usize,
    /// The answer of the update most recently handed to the consumer —
    /// the rebase target when the whole queue coalesces down to one
    /// pending update.
    delivered: Vec<RankedMatch>,
    /// Updates merged away by overflow coalescing.
    coalesced: u64,
    /// Queued updates evicted by overflow coalescing (the pop side of a
    /// coalesce — what the consumer never saw).
    dropped: u64,
    /// Diffs rewritten onto an earlier baseline so the reconciliation
    /// chain stays gapless across the eviction (the push side).
    rebased: u64,
    closed: bool,
}

/// What one [`SubShared::push`] did to the queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PushOutcome {
    /// Whether the push overflowed the queue and coalesced newest-wins.
    pub(crate) coalesced: bool,
    /// Queue depth right after the push — the fan-out loop feeds the
    /// `gpm_serving_max_queue_depth` gauge from this.
    pub(crate) depth: usize,
}

pub(crate) struct SubShared {
    queue: Mutex<SubQueue>,
    ready: Condvar,
}

impl SubShared {
    pub(crate) fn new(capacity: usize) -> Arc<Self> {
        Arc::new(SubShared {
            queue: Mutex::new(SubQueue {
                updates: VecDeque::new(),
                capacity: capacity.max(1),
                delivered: Vec::new(),
                coalesced: 0,
                dropped: 0,
                rebased: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    /// Enqueues `update`, coalescing on overflow: the newest queued
    /// update is dropped and the fresh one takes its place with a diff
    /// rebased onto the answer preceding the dropped one — so the
    /// consumer's reconciliation chain stays gapless even though its
    /// history is not.
    pub(crate) fn push(&self, mut update: AnswerUpdate) -> PushOutcome {
        let mut q = self.lock();
        if q.closed {
            return PushOutcome { coalesced: false, depth: q.updates.len() };
        }
        let mut coalesced = false;
        if q.updates.len() == q.capacity {
            q.updates.pop_back();
            let base: &[RankedMatch] = q.updates.back().map_or(&q.delivered, |u| &u.topk);
            update.diff = AnswerDiff::between(base, &update.topk);
            q.coalesced += 1;
            q.dropped += 1;
            q.rebased += 1;
            coalesced = true;
        }
        q.updates.push_back(update);
        let depth = q.updates.len();
        drop(q);
        self.ready.notify_all();
        PushOutcome { coalesced, depth }
    }

    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Point-in-time `(depth, capacity)` of the queue — the health
    /// model's saturation probe (`depth == capacity` means the next push
    /// will coalesce).
    pub(crate) fn saturation(&self) -> (usize, usize) {
        let q = self.lock();
        (q.updates.len(), q.capacity)
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, SubQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A consumer's handle on one pattern's answer stream. Cheap to move to a
/// consumer thread; dropping it does **not** cancel the subscription
/// (use [`AnswerService::unsubscribe`]).
///
/// [`AnswerService::unsubscribe`]: crate::AnswerService::unsubscribe
pub struct Subscription {
    pub(crate) id: SubscriptionId,
    pub(crate) pattern: PatternId,
    pub(crate) mode: NotifyMode,
    pub(crate) shared: Arc<SubShared>,
}

impl Subscription {
    /// This subscription's id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The pattern whose answers this subscription follows.
    pub fn pattern(&self) -> PatternId {
        self.pattern
    }

    /// What this subscription is notified about.
    pub fn mode(&self) -> NotifyMode {
        self.mode
    }

    /// Takes the oldest pending update without blocking.
    pub fn try_recv(&self) -> Option<AnswerUpdate> {
        let mut q = self.shared.lock();
        let update = q.updates.pop_front()?;
        q.delivered = update.topk.clone();
        Some(update)
    }

    /// Blocks up to `timeout` for the next update. `None` on timeout or
    /// once the subscription is closed and drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<AnswerUpdate> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(update) = q.updates.pop_front() {
                q.delivered = update.topk.clone();
                return Some(update);
            }
            if q.closed {
                return None;
            }
            let now = Instant::now();
            let left = deadline.checked_duration_since(now)?;
            let (guard, _) =
                self.shared.ready.wait_timeout(q, left).unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Takes every pending update.
    pub fn drain(&self) -> Vec<AnswerUpdate> {
        let mut q = self.shared.lock();
        let out: Vec<AnswerUpdate> = q.updates.drain(..).collect();
        if let Some(last) = out.last() {
            q.delivered = last.topk.clone();
        }
        out
    }

    /// Number of updates waiting.
    pub fn pending(&self) -> usize {
        self.shared.lock().updates.len()
    }

    /// Updates merged away by overflow coalescing so far.
    pub fn coalesced(&self) -> u64 {
        self.shared.lock().coalesced
    }

    /// Queued updates this subscription lost to newest-wins coalescing —
    /// intermediate answers the consumer never received (also counted
    /// stack-wide as `gpm_serving_updates_dropped_total`).
    pub fn dropped(&self) -> u64 {
        self.shared.lock().dropped
    }

    /// Diffs rebased onto an earlier baseline during coalescing so the
    /// consumer's reconciliation chain stayed gapless (also counted
    /// stack-wide as `gpm_serving_diffs_rebased_total`).
    pub fn rebased(&self) -> u64 {
        self.shared.lock().rebased
    }

    /// `true` once the service dropped this subscription (pending updates
    /// remain readable).
    pub fn is_closed(&self) -> bool {
        self.shared.lock().closed
    }
}
