//! JSON (de)serialization for deltas and attribute-carrying graphs, via
//! the workspace's serde stubs.
//!
//! The serving layer's **delta log** persists update batches so a crashed
//! or late-joining service can replay the stream and reproduce identical
//! versioned answers. The binary snapshot format in [`crate::io`] drops
//! attribute tables (generators re-derive them), which is exactly wrong
//! for replay — an attr-predicate answer depends on them — so this module
//! provides a self-contained JSON encoding for
//!
//! * [`AttrValue`] — tagged by variant (`{"i": …}` / `{"f": …}` /
//!   `{"s": …}`) so `Int(4)` and `Float(4.0)` round-trip distinguishably
//!   (SetAttr idempotency keys on the exact stored representation);
//! * [`DeltaOp`] / [`GraphDelta`] — one object per op, tagged by `"op"`;
//! * [`DiGraph`] — labels, edges and attributes (display names are not
//!   carried: dynamic workloads never read them).
//!
//! Numbers ride the stub's `f64` tree: integers are exact up to 2^53,
//! far beyond any attribute value the workloads store. Non-finite floats
//! are not representable (they would print as `null`).

use serde::{Serialize, Value};

use crate::attrs::{AttrValue, Attributes};
use crate::builder::GraphBuilder;
use crate::delta::{DeltaOp, GraphDelta};
use crate::digraph::{DiGraph, NodeId};
use crate::error::GraphError;
use crate::Result;

fn corrupt(what: &str) -> GraphError {
    GraphError::Corrupt(format!("bad delta-log JSON: {what}"))
}

impl Serialize for AttrValue {
    fn to_value(&self) -> Value {
        match self {
            AttrValue::Int(i) => Value::Object(vec![("i".into(), (*i).to_value())]),
            // Non-finite floats would print as JSON `null` and fail to
            // load — encode them as tagged strings so a log that saved
            // always replays.
            AttrValue::Float(f) if !f.is_finite() => {
                Value::Object(vec![("f".into(), format!("{f}").to_value())])
            }
            AttrValue::Float(f) => Value::Object(vec![("f".into(), (*f).to_value())]),
            AttrValue::Str(s) => Value::Object(vec![("s".into(), s.to_value())]),
        }
    }
}

/// Decodes a tagged [`AttrValue`].
pub fn attr_value_from(v: &Value) -> Result<AttrValue> {
    if let Some(i) = v.get("i") {
        return i.as_i64().map(AttrValue::Int).ok_or_else(|| corrupt("non-integral \"i\" value"));
    }
    if let Some(f) = v.get("f") {
        if let Some(s) = f.as_str() {
            return match s {
                "NaN" => Ok(AttrValue::Float(f64::NAN)),
                "inf" => Ok(AttrValue::Float(f64::INFINITY)),
                "-inf" => Ok(AttrValue::Float(f64::NEG_INFINITY)),
                _ => Err(corrupt("unknown non-finite \"f\" value")),
            };
        }
        return f.as_f64().map(AttrValue::Float).ok_or_else(|| corrupt("non-numeric \"f\" value"));
    }
    if let Some(s) = v.get("s") {
        return s
            .as_str()
            .map(|s| AttrValue::Str(s.to_owned()))
            .ok_or_else(|| corrupt("non-string \"s\" value"));
    }
    Err(corrupt("attr value missing its variant tag"))
}

impl Serialize for DeltaOp {
    fn to_value(&self) -> Value {
        match self {
            DeltaOp::AddNode(label) => Value::Object(vec![
                ("op".into(), "add_node".to_value()),
                ("label".into(), label.to_value()),
            ]),
            DeltaOp::AddEdge(s, t) => Value::Object(vec![
                ("op".into(), "add_edge".to_value()),
                ("s".into(), s.to_value()),
                ("t".into(), t.to_value()),
            ]),
            DeltaOp::RemoveEdge(s, t) => Value::Object(vec![
                ("op".into(), "remove_edge".to_value()),
                ("s".into(), s.to_value()),
                ("t".into(), t.to_value()),
            ]),
            DeltaOp::RemoveNode(v) => Value::Object(vec![
                ("op".into(), "remove_node".to_value()),
                ("v".into(), v.to_value()),
            ]),
            DeltaOp::SetAttr { node, key, value } => Value::Object(vec![
                ("op".into(), "set_attr".to_value()),
                ("node".into(), node.to_value()),
                ("key".into(), key.to_value()),
                ("value".into(), value.to_value()),
            ]),
            DeltaOp::UnsetAttr { node, key } => Value::Object(vec![
                ("op".into(), "unset_attr".to_value()),
                ("node".into(), node.to_value()),
                ("key".into(), key.to_value()),
            ]),
        }
    }
}

impl Serialize for GraphDelta {
    fn to_value(&self) -> Value {
        Value::Object(vec![("ops".into(), self.ops.to_value())])
    }
}

fn node_id(v: &Value, what: &str) -> Result<NodeId> {
    v.as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| corrupt(&format!("bad node id in {what}")))
}

fn field<'v>(v: &'v Value, key: &str, what: &str) -> Result<&'v Value> {
    v.get(key).ok_or_else(|| corrupt(&format!("{what} missing {key:?}")))
}

/// Decodes one tagged [`DeltaOp`].
pub fn delta_op_from(v: &Value) -> Result<DeltaOp> {
    let op = field(v, "op", "delta op")?.as_str().ok_or_else(|| corrupt("non-string op tag"))?;
    match op {
        "add_node" => {
            let label = field(v, "label", op)?
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| corrupt("bad label"))?;
            Ok(DeltaOp::AddNode(label))
        }
        "add_edge" => {
            Ok(DeltaOp::AddEdge(node_id(field(v, "s", op)?, op)?, node_id(field(v, "t", op)?, op)?))
        }
        "remove_edge" => Ok(DeltaOp::RemoveEdge(
            node_id(field(v, "s", op)?, op)?,
            node_id(field(v, "t", op)?, op)?,
        )),
        "remove_node" => Ok(DeltaOp::RemoveNode(node_id(field(v, "v", op)?, op)?)),
        "set_attr" => Ok(DeltaOp::SetAttr {
            node: node_id(field(v, "node", op)?, op)?,
            key: field(v, "key", op)?.as_str().ok_or_else(|| corrupt("bad key"))?.to_owned(),
            value: attr_value_from(field(v, "value", op)?)?,
        }),
        "unset_attr" => Ok(DeltaOp::UnsetAttr {
            node: node_id(field(v, "node", op)?, op)?,
            key: field(v, "key", op)?.as_str().ok_or_else(|| corrupt("bad key"))?.to_owned(),
        }),
        other => Err(corrupt(&format!("unknown op tag {other:?}"))),
    }
}

/// Decodes a [`GraphDelta`] (`{"ops": [...]}`).
pub fn delta_from_value(v: &Value) -> Result<GraphDelta> {
    let ops = field(v, "ops", "delta")?.as_array().ok_or_else(|| corrupt("ops not an array"))?;
    Ok(GraphDelta { ops: ops.iter().map(delta_op_from).collect::<Result<_>>()? })
}

/// Encodes a graph with labels, edges and attributes (names dropped).
pub fn graph_to_value(g: &DiGraph) -> Value {
    let labels: Vec<u32> = g.nodes().map(|v| g.label(v)).collect();
    let edges: Vec<Value> =
        g.edges().map(|e| Value::Array(vec![e.source.to_value(), e.target.to_value()])).collect();
    let attrs: Vec<Value> = g
        .nodes()
        .filter_map(|v| g.attributes(v).filter(|a| !a.is_empty()).map(|a| (v, a)))
        .map(|(v, a)| {
            // Keys live in their own nested object so an attribute
            // literally named "node" cannot collide with the id field.
            let keys: Vec<(String, Value)> =
                a.iter().map(|(k, val)| (k.to_owned(), val.to_value())).collect();
            Value::Object(vec![
                ("node".into(), v.to_value()),
                ("attrs".into(), Value::Object(keys)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("labels".into(), labels.to_value()),
        ("edges".into(), Value::Array(edges)),
        ("attrs".into(), Value::Array(attrs)),
    ])
}

/// Decodes a graph encoded by [`graph_to_value`].
pub fn graph_from_value(v: &Value) -> Result<DiGraph> {
    let labels =
        field(v, "labels", "graph")?.as_array().ok_or_else(|| corrupt("labels not an array"))?;
    let edges =
        field(v, "edges", "graph")?.as_array().ok_or_else(|| corrupt("edges not an array"))?;
    let attrs =
        field(v, "attrs", "graph")?.as_array().ok_or_else(|| corrupt("attrs not an array"))?;

    let mut per_node: Vec<Attributes> = vec![Attributes::new(); labels.len()];
    for entry in attrs {
        let node = node_id(field(entry, "node", "attr entry")?, "attr entry")? as usize;
        if node >= per_node.len() {
            return Err(corrupt("attr entry for out-of-range node"));
        }
        match field(entry, "attrs", "attr entry")? {
            Value::Object(fields) => {
                for (k, val) in fields {
                    per_node[node].set(k.clone(), attr_value_from(val)?);
                }
            }
            _ => return Err(corrupt("attr entry keys not an object")),
        }
    }

    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for (label, a) in labels.iter().zip(per_node) {
        let label = label
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| corrupt("bad label"))?;
        b.add_node_with_attrs(label, a);
    }
    for e in edges {
        let pair = e.as_array().ok_or_else(|| corrupt("edge not a pair"))?;
        if pair.len() != 2 {
            return Err(corrupt("edge not a pair"));
        }
        b.add_edge(node_id(&pair[0], "edge")?, node_id(&pair[1], "edge")?)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;

    #[test]
    fn delta_roundtrips_through_json_text() {
        let d = GraphDelta::new()
            .add_node(3)
            .add_edge(0, 4)
            .remove_edge(1, 2)
            .remove_node(2)
            .set_attr(0, "views", 41i64)
            .set_attr(0, "rate", 2.5f64)
            .set_attr(1, "category", "mu\"sic\n")
            .unset_attr(0, "views");
        let text = serde_json::to_string(&d).unwrap();
        let back = delta_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn attr_value_tags_distinguish_variants() {
        for v in [AttrValue::Int(4), AttrValue::Float(4.0), AttrValue::Str("4".into())] {
            let text = serde_json::to_string(&v).unwrap();
            let back = attr_value_from(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, v, "via {text}");
        }
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        // A log that saved must always load: NaN/±inf ride as tagged
        // strings (plain JSON would print them as `null`).
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            let text = serde_json::to_string(&AttrValue::Float(v)).unwrap();
            let back = attr_value_from(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, AttrValue::Float(v), "via {text}");
        }
        let text = serde_json::to_string(&AttrValue::Float(f64::NAN)).unwrap();
        match attr_value_from(&serde_json::from_str(&text).unwrap()).unwrap() {
            AttrValue::Float(f) => assert!(f.is_nan()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn graph_roundtrips_with_attributes() {
        let mut b = GraphBuilder::new();
        b.add_node_with_attrs(
            7,
            Attributes::from_pairs([("views", AttrValue::Int(9)), ("rate", AttrValue::Float(0.5))]),
        );
        b.add_node(2);
        // Keys named like the envelope's own fields must survive too.
        b.add_node_with_attrs(
            7,
            Attributes::from_pairs([
                ("category", AttrValue::from("x")),
                ("node", AttrValue::Int(7)),
                ("attrs", AttrValue::Int(8)),
            ]),
        );
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 0).unwrap();
        let g = b.build();

        let text = serde_json::to_string(&graph_to_value(&g)).unwrap();
        let back = graph_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.label(v), g.label(v));
            assert_eq!(back.successors(v), g.successors(v));
            assert_eq!(
                back.attributes(v).cloned().unwrap_or_default(),
                g.attributes(v).cloned().unwrap_or_default()
            );
        }
    }

    #[test]
    fn corrupt_records_are_rejected() {
        let bad = |s: &str| delta_from_value(&serde_json::from_str(s).unwrap());
        assert!(bad(r#"{"ops":[{"op":"warp","v":1}]}"#).is_err());
        assert!(bad(r#"{"ops":[{"op":"add_edge","s":1}]}"#).is_err());
        assert!(bad(r#"{"ops":[{"op":"set_attr","node":0,"key":"k","value":{"q":1}}]}"#).is_err());
        assert!(bad(r#"{"nope":[]}"#).is_err());
        let g = graph_from_parts(&[0], &[]).unwrap();
        let text = serde_json::to_string(&graph_to_value(&g)).unwrap();
        assert!(graph_from_value(&serde_json::from_str(&text).unwrap()).is_ok());
        assert!(graph_from_value(&serde_json::from_str(r#"{"labels":[0]}"#).unwrap()).is_err());
    }
}
