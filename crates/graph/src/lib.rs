//! # gpm-graph
//!
//! Directed, node-labeled graph substrate for diversified top-k graph pattern
//! matching (Fan, Wang, Wu — VLDB 2013).
//!
//! A *data graph* in the paper is `G = (V, E, L)`: a finite set of nodes, a
//! set of directed edges and a labeling function `L` assigning each node a
//! label from an alphabet `Σ`. This crate provides:
//!
//! * [`DiGraph`] — an immutable CSR (compressed sparse row) graph with both
//!   forward and reverse adjacency, node labels and optional node attributes;
//! * [`GraphBuilder`] — an incremental builder that deduplicates edges;
//! * [`scc`] — iterative Tarjan strongly-connected components, the
//!   condensation DAG `G_SCC` and the topological ranks `r(v)` used by the
//!   paper's top-k algorithms (Section 4);
//! * [`BitSet`] — a fixed-width bitset used for relevant-set algebra
//!   (`R(u,v)` unions, intersections and Jaccard distances);
//! * [`reach`] — BFS/DFS utilities and hop distances (used by the
//!   distance-based diversity function of Section 3.4);
//! * [`io`] — a line-oriented text format and a compact binary snapshot
//!   format for graphs;
//! * [`json`] — JSON encoding of deltas and attribute-carrying graphs
//!   (the serving layer's replayable delta log persists through it);
//! * [`stats`] — degree/label/SCC summaries used by the experiment harness.
//!
//! The substrate is deliberately free of third-party graph dependencies: the
//! reproduction builds every system the paper relies on from scratch.

pub mod attrs;
pub mod bitset;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod digraph;
pub mod dynamic;
pub mod error;
pub mod io;
pub mod json;
pub mod reach;
pub mod scc;
pub mod stats;

pub use attrs::{AttrValue, Attributes};
pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use delta::{apply_delta, AppliedDelta, DeltaOp, EffectiveOp, GraphDelta, TOMBSTONE_LABEL};
pub use digraph::{DiGraph, EdgeRef, Label, NodeId};
pub use dynamic::DynGraph;
pub use error::GraphError;
pub use scc::{Condensation, SccIndex};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, GraphError>;
