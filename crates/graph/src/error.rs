//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, validation and (de)serialization.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id that was never declared.
    UnknownNode(u32),
    /// A node id exceeded the supported maximum (`u32::MAX - 1`).
    TooManyNodes(usize),
    /// Text or binary input could not be parsed.
    Parse { line: usize, msg: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A binary snapshot had an invalid header or was truncated.
    Corrupt(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::TooManyNodes(n) => write!(f, "too many nodes: {n}"),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(GraphError::UnknownNode(3).to_string(), "unknown node id 3");
        assert!(GraphError::TooManyNodes(99).to_string().contains("99"));
        let p = GraphError::Parse { line: 7, msg: "bad".into() };
        assert!(p.to_string().contains("line 7"));
        let io = GraphError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("i/o"));
        assert!(GraphError::Corrupt("hdr".into()).to_string().contains("hdr"));
    }
}
