//! The immutable directed labeled graph `G = (V, E, L)`.

use crate::attrs::Attributes;
use crate::csr::Csr;

/// Node identifier: a dense index in `0..node_count`.
pub type NodeId = u32;

/// Node label from the alphabet `Σ`, interned as a dense integer.
pub type Label = u32;

/// A borrowed edge `(source, target)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    pub source: NodeId,
    pub target: NodeId,
}

/// An immutable directed graph with node labels, optional display names and
/// optional attribute maps, stored as forward + reverse CSR.
///
/// Construction goes through [`crate::GraphBuilder`], which deduplicates
/// edges and validates node references.
#[derive(Debug, Clone)]
pub struct DiGraph {
    pub(crate) fwd: Csr,
    pub(crate) rev: Csr,
    pub(crate) labels: Vec<Label>,
    pub(crate) names: Option<Vec<String>>,
    pub(crate) attrs: Option<Vec<Attributes>>,
    /// Node ids grouped by label: `by_label_nodes[by_label_spans[l].0 .. .1]`.
    pub(crate) by_label_nodes: Vec<NodeId>,
    pub(crate) by_label_spans: Vec<(Label, u32, u32)>,
}

impl DiGraph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.fwd.edge_count()
    }

    /// `|G| = |V| + |E|`, the size measure used throughout the paper.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// All labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Successors of `v` (sorted by id).
    #[inline]
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        self.fwd.neighbors(v)
    }

    /// Predecessors of `v` (sorted by id).
    #[inline]
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        self.rev.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.fwd.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.rev.degree(v)
    }

    /// `true` iff edge `(s, t)` exists.
    #[inline]
    pub fn has_edge(&self, s: NodeId, t: NodeId) -> bool {
        self.fwd.has_edge(s, t)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Iterates over all edges in source order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.nodes().flat_map(move |s| {
            self.successors(s).iter().map(move |&t| EdgeRef { source: s, target: t })
        })
    }

    /// All nodes carrying `label`, sorted by id. This is the candidate lookup
    /// `can(u)` for a label-predicate pattern node.
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        match self.by_label_spans.binary_search_by_key(&label, |&(l, _, _)| l) {
            Ok(i) => {
                let (_, a, b) = self.by_label_spans[i];
                &self.by_label_nodes[a as usize..b as usize]
            }
            Err(_) => &[],
        }
    }

    /// Number of distinct labels present in the graph.
    pub fn distinct_label_count(&self) -> usize {
        self.by_label_spans.len()
    }

    /// Display name of `v` if names were provided, else `None`.
    pub fn name(&self, v: NodeId) -> Option<&str> {
        self.names.as_ref().map(|n| n[v as usize].as_str())
    }

    /// Display name or the id rendered as text.
    pub fn display(&self, v: NodeId) -> String {
        match self.name(v) {
            Some(n) => n.to_owned(),
            None => format!("#{v}"),
        }
    }

    /// Resolves a display name back to a node id (linear scan; test helper).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        let names = self.names.as_ref()?;
        names.iter().position(|n| n == name).map(|i| i as NodeId)
    }

    /// Attributes of `v` (empty if the graph has no attribute table).
    pub fn attributes(&self, v: NodeId) -> Option<&Attributes> {
        self.attrs.as_ref().map(|a| &a[v as usize])
    }

    /// `true` if any node has attributes attached.
    pub fn has_attributes(&self) -> bool {
        self.attrs.is_some()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn basic_accessors() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0);
        let c = b.add_node(1);
        let d = b.add_node(0);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        b.add_edge(a, d).unwrap();
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.successors(a), &[c, d]);
        assert_eq!(g.predecessors(d), &[a, c]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert!(g.has_edge(a, c));
        assert!(!g.has_edge(c, a));
        assert_eq!(g.nodes_with_label(0), &[a, d]);
        assert_eq!(g.nodes_with_label(1), &[c]);
        assert_eq!(g.nodes_with_label(9), &[] as &[u32]);
        assert_eq!(g.distinct_label_count(), 2);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn names_and_display() {
        let mut b = GraphBuilder::new();
        let a = b.add_named_node("PM1", 0);
        let g = b.build();
        assert_eq!(g.name(a), Some("PM1"));
        assert_eq!(g.display(a), "PM1");
        assert_eq!(g.node_by_name("PM1"), Some(a));
        assert_eq!(g.node_by_name("nope"), None);
    }
}
