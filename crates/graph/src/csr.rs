//! Compressed sparse row (CSR) adjacency storage.
//!
//! The matching algorithms scan successor and predecessor lists of millions
//! of nodes; CSR keeps each adjacency list contiguous (one `offsets` lookup,
//! then a cache-friendly slice scan) and the whole structure in two flat
//! vectors.

use crate::digraph::NodeId;

/// One adjacency direction of a graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted target lists.
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from an edge list. `edges` need not be sorted; duplicate
    /// edges must already have been removed by the caller.
    pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut degree = vec![0u32; node_count];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut targets = vec![0 as NodeId; edges.len()];
        for &(s, t) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        // Sort each adjacency list so membership tests can binary-search.
        let mut csr = Csr { offsets, targets };
        for v in 0..node_count {
            let (a, b) = csr.range(v as NodeId);
            csr.targets[a..b].sort_unstable();
        }
        csr
    }

    /// Reverses a CSR (swaps edge directions).
    pub fn reversed(&self, node_count: usize) -> Self {
        let mut edges = Vec::with_capacity(self.targets.len());
        for v in 0..node_count as NodeId {
            for &t in self.neighbors(v) {
                edges.push((t, v));
            }
        }
        Csr::from_edges(node_count, &edges)
    }

    #[inline]
    fn range(&self, v: NodeId) -> (usize, usize) {
        (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize)
    }

    /// Successors of `v` (sorted).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (a, b) = self.range(v);
        &self.targets[a..b]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let (a, b) = self.range(v);
        b - a
    }

    /// `true` iff the edge `(v, t)` is present.
    #[inline]
    pub fn has_edge(&self, v: NodeId, t: NodeId) -> bool {
        self.neighbors(v).binary_search(&t).is_ok()
    }

    /// Total number of stored edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basic() {
        let csr = Csr::from_edges(4, &[(0, 2), (0, 1), (2, 3), (1, 3)]);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[3]);
        assert_eq!(csr.neighbors(3), &[] as &[NodeId]);
        assert_eq!(csr.degree(0), 2);
        assert!(csr.has_edge(0, 2));
        assert!(!csr.has_edge(2, 0));
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.node_count(), 4);
    }

    #[test]
    fn reversed_roundtrip() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let rev = csr.reversed(3);
        assert_eq!(rev.neighbors(2), &[0, 1]);
        assert_eq!(rev.neighbors(1), &[0]);
        assert_eq!(rev.neighbors(0), &[] as &[NodeId]);
        assert_eq!(rev.reversed(3), csr);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let csr = Csr::from_edges(5, &[(4, 0)]);
        for v in 0..4 {
            assert_eq!(csr.degree(v), 0);
        }
        assert_eq!(csr.neighbors(4), &[0]);
    }
}
