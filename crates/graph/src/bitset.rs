//! Fixed-width bitset over a compact universe `0..len`.
//!
//! Relevant sets `R(u,v)` (Section 3.1 of the paper) are sets of data-graph
//! nodes; the top-k algorithms take unions of them during propagation and the
//! diversification functions need `|R₁ ∩ R₂|` / `|R₁ ∪ R₂|` for the Jaccard
//! distance `δd`. A word-packed bitset over a per-query compact universe makes
//! every one of those operations a linear scan over `len/64` machine words.

/// A fixed-capacity bitset; the capacity is chosen at construction time.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitSet {
    /// Creates an empty bitset able to hold bits `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; word_count(len)], len }
    }

    /// Creates a bitset with every bit in `0..len` set.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim_tail();
        s
    }

    /// Builds a bitset from an iterator of bit indices.
    pub fn from_iter(len: usize, bits: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for b in bits {
            s.insert(b);
        }
        s
    }

    /// Number of bits this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets bit `i`. Returns `true` if the bit was newly set.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words.get(w).is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits, keeping the capacity.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union. Returns `true` if any new bit was added (used by the
    /// propagation engine to detect that a relevant set actually grew).
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// `|self ∪ other|` without allocating.
    pub fn union_count(&self, other: &BitSet) -> usize {
        self.words.iter().zip(&other.words).map(|(a, b)| (a | b).count_ones() as usize).sum()
    }

    /// Jaccard distance `1 - |A∩B| / |A∪B|`; two empty sets have distance 0.
    ///
    /// This is exactly the paper's `δd(v1,v2)` (Section 3.2) when applied to
    /// relevant sets, and it is a metric: symmetric and triangle-inequal.
    pub fn jaccard_distance(&self, other: &BitSet) -> f64 {
        let union = self.union_count(other);
        if union == 0 {
            return 0.0;
        }
        let inter = self.intersection_count(other);
        1.0 - inter as f64 / union as f64
    }

    /// `true` if the sets share no bit.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every bit of `self` is set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Memory footprint of the payload in bytes (for budget accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    fn trim_tail(&mut self) {
        let extra = self.words.len() * WORD_BITS - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over set bits.
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + tz)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = BitIter<'a>;
    fn into_iter(self) -> BitIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports no change");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_intersection_difference() {
        let a = BitSet::from_iter(100, [1, 5, 70]);
        let b = BitSet::from_iter(100, [5, 70, 99]);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b), "second union is a no-op");
        assert_eq!(u.count(), 4);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.union_count(&b), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 70]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn jaccard_matches_paper_fractions() {
        // δd(PM1, PM2) = 10/11 in Example 5: |∩|=1, |∪|=11.
        let r1 = BitSet::from_iter(16, [0, 1, 2, 3]);
        let r2 = BitSet::from_iter(16, [3, 4, 5, 6, 7, 8, 9, 10]);
        let d = r1.jaccard_distance(&r2);
        assert!((d - 10.0 / 11.0).abs() < 1e-12);
        // identical sets → 0; disjoint sets → 1; empty/empty → 0.
        assert_eq!(r1.jaccard_distance(&r1), 0.0);
        let r3 = BitSet::from_iter(16, [11, 12]);
        assert_eq!(r1.jaccard_distance(&r3), 1.0);
        let e = BitSet::new(16);
        assert_eq!(e.jaccard_distance(&BitSet::new(16)), 0.0);
    }

    #[test]
    fn full_and_trim() {
        let f = BitSet::full(67);
        assert_eq!(f.count(), 67);
        assert!(f.contains(66));
        let f64b = BitSet::full(64);
        assert_eq!(f64b.count(), 64);
    }

    #[test]
    fn subset_disjoint() {
        let a = BitSet::from_iter(40, [3, 9]);
        let b = BitSet::from_iter(40, [3, 9, 20]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let c = BitSet::from_iter(40, [1]);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iter_ascending() {
        let s = BitSet::from_iter(300, [299, 0, 64, 65, 128]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 65, 128, 299]);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::from_iter(10, [1, 2]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
