//! Incremental graph construction.

use crate::attrs::Attributes;
use crate::csr::Csr;
use crate::digraph::{DiGraph, Label, NodeId};
use crate::error::GraphError;

/// Builds a [`DiGraph`] incrementally, validating node references and
/// deduplicating parallel edges.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    names: Vec<String>,
    any_named: bool,
    attrs: Vec<Attributes>,
    any_attrs: bool,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with node/edge capacity reserved up front (cf. perf-book:
    /// reserve when the final size is known).
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut b = Self::new();
        b.labels.reserve(nodes);
        b.edges.reserve(edges);
        b
    }

    /// Adds a node with `label`, returning its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        self.names.push(String::new());
        self.attrs.push(Attributes::new());
        id
    }

    /// Adds a node with a display name (used by examples and fixtures).
    pub fn add_named_node(&mut self, name: impl Into<String>, label: Label) -> NodeId {
        let id = self.add_node(label);
        self.names[id as usize] = name.into();
        self.any_named = true;
        id
    }

    /// Adds a node with attributes.
    pub fn add_node_with_attrs(&mut self, label: Label, attrs: Attributes) -> NodeId {
        let id = self.add_node(label);
        if !attrs.is_empty() {
            self.any_attrs = true;
        }
        self.attrs[id as usize] = attrs;
        id
    }

    /// Sets attributes of an existing node.
    pub fn set_attrs(&mut self, v: NodeId, attrs: Attributes) -> Result<(), GraphError> {
        let slot = self.attrs.get_mut(v as usize).ok_or(GraphError::UnknownNode(v))?;
        if !attrs.is_empty() {
            self.any_attrs = true;
        }
        *slot = attrs;
        Ok(())
    }

    /// Adds a directed edge; parallel duplicates are removed at `build`.
    pub fn add_edge(&mut self, s: NodeId, t: NodeId) -> Result<(), GraphError> {
        let n = self.labels.len() as u32;
        if s >= n {
            return Err(GraphError::UnknownNode(s));
        }
        if t >= n {
            return Err(GraphError::UnknownNode(t));
        }
        self.edges.push((s, t));
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into an immutable [`DiGraph`].
    pub fn build(mut self) -> DiGraph {
        let n = self.labels.len();
        // Deduplicate parallel edges (the paper's graphs are simple).
        self.edges.sort_unstable();
        self.edges.dedup();
        let fwd = Csr::from_edges(n, &self.edges);
        let rev = fwd.reversed(n);

        // Group node ids by label for O(1) candidate lookups.
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_unstable_by_key(|&v| (self.labels[v as usize], v));
        let mut spans: Vec<(Label, u32, u32)> = Vec::new();
        for (i, &v) in order.iter().enumerate() {
            let l = self.labels[v as usize];
            match spans.last_mut() {
                Some((last, _, end)) if *last == l => *end = i as u32 + 1,
                _ => spans.push((l, i as u32, i as u32 + 1)),
            }
        }

        DiGraph {
            fwd,
            rev,
            labels: self.labels,
            names: self.any_named.then_some(self.names),
            attrs: self.any_attrs.then_some(self.attrs),
            by_label_nodes: order,
            by_label_spans: spans,
        }
    }
}

/// Builds a graph directly from label and edge slices (fixture helper).
pub fn graph_from_parts(
    labels: &[Label],
    edges: &[(NodeId, NodeId)],
) -> Result<DiGraph, GraphError> {
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for &l in labels {
        b.add_node(l);
    }
    for &(s, t) in edges {
        b.add_edge(s, t)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_validation() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(2);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap(); // duplicate
        assert!(matches!(b.add_edge(a, 99), Err(GraphError::UnknownNode(99))));
        assert!(matches!(b.add_edge(98, a), Err(GraphError::UnknownNode(98))));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn from_parts() {
        let g = graph_from_parts(&[0, 0, 1], &[(0, 2), (1, 2)]).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.nodes_with_label(0).len(), 2);
        assert!(graph_from_parts(&[0], &[(0, 1)]).is_err());
    }

    #[test]
    fn attrs_on_build() {
        let mut b = GraphBuilder::new();
        let v = b.add_node_with_attrs(0, Attributes::from_pairs([("views", 10i64)]));
        let w = b.add_node(0);
        b.set_attrs(w, Attributes::from_pairs([("views", 3i64)])).unwrap();
        assert!(b.set_attrs(9, Attributes::new()).is_err());
        let g = b.build();
        assert!(g.has_attributes());
        assert_eq!(g.attributes(v).unwrap().get("views").and_then(|x| x.as_f64()), Some(10.0));
        assert_eq!(g.attributes(w).unwrap().get("views").and_then(|x| x.as_f64()), Some(3.0));
    }

    #[test]
    fn no_attrs_no_table() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        let g = b.build();
        assert!(!g.has_attributes());
        assert!(g.attributes(0).is_none());
    }

    #[test]
    fn capacity_and_counts() {
        let mut b = GraphBuilder::with_capacity(10, 20);
        let a = b.add_node(0);
        let c = b.add_node(0);
        b.add_edge(a, c).unwrap();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.edge_count(), 1);
    }
}
