//! Node attributes.
//!
//! The paper's data graphs carry labels, but its real-life queries (Fig. 4)
//! filter on node *attributes* — e.g. a YouTube video's `category`, `rate`,
//! `views` and `age`, or an Amazon product's `group` and `sales rank`. The
//! paper notes (Section 2.2) that patterns extend to "multiple predicates on
//! attributes"; this module supplies the attribute storage those predicates
//! evaluate against.

use std::fmt;

/// A single attribute value. Comparison across variants is always `false`
/// for ordering predicates; equality across variants is `false` too.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer-valued attribute (e.g. `views`, `sales_rank`, `year`).
    Int(i64),
    /// Floating attribute (e.g. `rate`).
    Float(f64),
    /// String attribute (e.g. `category`, `venue`).
    Str(String),
}

impl AttrValue {
    /// Numeric view: integers widen to `f64`; strings are `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            AttrValue::Str(_) => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Per-node attribute map.
///
/// Nodes typically carry 0–5 attributes, so a small sorted vector of
/// `(key, value)` pairs beats a hash map both in memory and lookup time
/// (see the perf-book guidance on small collections).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attributes {
    entries: Vec<(String, AttrValue)>,
}

impl Attributes {
    /// Empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(key, value)` pairs; later duplicates overwrite earlier.
    pub fn from_pairs<K, V>(pairs: impl IntoIterator<Item = (K, V)>) -> Self
    where
        K: Into<String>,
        V: Into<AttrValue>,
    {
        let mut a = Self::new();
        for (k, v) in pairs {
            a.set(k.into(), v.into());
        }
        a
    }

    /// Inserts or overwrites `key`.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<AttrValue>) {
        let key = key.into();
        let value = value.into();
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key, value)),
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok().map(|i| &self.entries[i].1)
    }

    /// Removes `key`, returning the previous value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<AttrValue> {
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// `true` when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no attribute is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_overwrite() {
        let mut a = Attributes::new();
        a.set("views", 5000i64);
        a.set("category", "music");
        a.set("views", 6000i64);
        assert_eq!(a.get("views"), Some(&AttrValue::Int(6000)));
        assert_eq!(a.get("category").and_then(|v| v.as_str()), Some("music"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_pairs_sorted_iteration() {
        let a = Attributes::from_pairs([("z", 1i64), ("a", 2i64), ("m", 3i64)]);
        let keys: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(AttrValue::Int(4).as_f64(), Some(4.0));
        assert_eq!(AttrValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::Str("x".into()).as_f64(), None);
        assert_eq!(AttrValue::from("rock").as_str(), Some("rock"));
        assert!(Attributes::new().is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(AttrValue::Int(7).to_string(), "7");
        assert_eq!(AttrValue::Str("a".into()).to_string(), "a");
    }

    #[test]
    fn remove_and_contains() {
        let mut a = Attributes::from_pairs([("views", 5i64), ("category", 2i64)]);
        assert!(a.contains_key("views"));
        assert_eq!(a.remove("views"), Some(AttrValue::Int(5)));
        assert_eq!(a.remove("views"), None, "second remove is a no-op");
        assert!(!a.contains_key("views"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove("missing"), None);
    }

    #[test]
    fn cross_variant_equality_is_false() {
        // `AttrValue` equality is *structural*: the derive compares variants
        // first, so `Int(4) != Float(4.0)` and `Int(4) != Str("4")`. Numeric
        // widening happens only inside predicate evaluation (gpm-pattern),
        // never in the storage layer — SetAttr idempotency therefore keys on
        // the exact stored representation.
        assert_ne!(AttrValue::Int(4), AttrValue::Float(4.0));
        assert_ne!(AttrValue::Int(4), AttrValue::Str("4".into()));
        assert_ne!(AttrValue::Float(0.0), AttrValue::Str(String::new()));
        assert_eq!(AttrValue::Int(4), AttrValue::Int(4));
        assert_eq!(AttrValue::Str("x".into()), AttrValue::Str("x".into()));
    }
}
