//! Graph deltas: batched updates for dynamic data graphs.
//!
//! Social networks — the paper's target domain — change continuously, so
//! the serving layer maintains matches **incrementally** instead of
//! recomputing `M(Q,G)` from scratch (see the `gpm-incremental` crate). A
//! [`GraphDelta`] is one batch of updates; [`DynGraph`] (in
//! [`crate::dynamic`]) applies it in place, and [`apply_delta`] rebuilds an
//! immutable [`DiGraph`](crate::DiGraph) for from-scratch baselines and
//! equivalence tests.
//!
//! Semantics:
//!
//! * **`AddNode(label)`** — appends a node; ids stay dense, so the `i`-th
//!   added node of a batch gets id `node_count + i` (with `node_count`
//!   taken *before* the batch).
//! * **`AddEdge(s, t)`** / **`RemoveEdge(s, t)`** — idempotent: inserting
//!   an existing edge or removing a missing one is a no-op, recorded as
//!   such in the [`AppliedDelta`]. Edge ops whose endpoints are tombstoned
//!   (even by an earlier op of the same batch) are no-ops too — a removed
//!   node's slot never accrues new edges.
//! * **`RemoveNode(v)`** — tombstone semantics: node ids must stay dense
//!   (every index in the CSR, candidate bitmasks and relevant-set universes
//!   is an id), so removal drops all incident edges, relabels the node
//!   to the reserved [`TOMBSTONE_LABEL`], which no pattern may use, and
//!   clears its attributes. The slot is never reused.
//! * **`SetAttr { node, key, value }`** / **`UnsetAttr { node, key }`** —
//!   node attribute mutations (the paper's real-life queries filter on
//!   `category`, `views`, `sales rank`, …). Idempotent like the edge ops:
//!   setting a key to its current value or unsetting an absent key is a
//!   recorded no-op. Attr ops targeting a **tombstoned or never-added**
//!   node are no-ops too, never errors — generated streams may batch a
//!   `RemoveNode` ahead of a `SetAttr` to the same node, and a removed
//!   slot accrues no state of any kind.

use std::sync::Arc;

use crate::attrs::{AttrValue, Attributes};
use crate::builder::GraphBuilder;
use crate::digraph::{DiGraph, Label, NodeId};
use crate::error::GraphError;
use crate::Result;

/// Reserved label for removed nodes. Patterns must not use it; both the
/// dynamic path and [`apply_delta`] reject deltas that would add a node
/// with this label.
pub const TOMBSTONE_LABEL: Label = Label::MAX;

/// One update operation.
///
/// Not `Copy` since the attribute variants carry owned keys/values; the
/// structural variants stay cheap to clone.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Append a node with the given label (id = next dense id).
    AddNode(Label),
    /// Insert the edge `(s, t)`.
    AddEdge(NodeId, NodeId),
    /// Remove the edge `(s, t)`.
    RemoveEdge(NodeId, NodeId),
    /// Tombstone node `v`: drop incident edges, relabel to
    /// [`TOMBSTONE_LABEL`], clear attributes.
    RemoveNode(NodeId),
    /// Insert or overwrite one attribute of `node`.
    SetAttr {
        /// Target node.
        node: NodeId,
        /// Attribute key.
        key: String,
        /// New value.
        value: AttrValue,
    },
    /// Remove one attribute of `node`.
    UnsetAttr {
        /// Target node.
        node: NodeId,
        /// Attribute key.
        key: String,
    },
}

/// A batch of updates, applied in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    /// The operations, in application order.
    pub ops: Vec<DeltaOp>,
}

impl GraphDelta {
    /// Empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: append a node addition.
    pub fn add_node(mut self, label: Label) -> Self {
        self.ops.push(DeltaOp::AddNode(label));
        self
    }

    /// Builder-style: append an edge insertion.
    pub fn add_edge(mut self, s: NodeId, t: NodeId) -> Self {
        self.ops.push(DeltaOp::AddEdge(s, t));
        self
    }

    /// Builder-style: append an edge removal.
    pub fn remove_edge(mut self, s: NodeId, t: NodeId) -> Self {
        self.ops.push(DeltaOp::RemoveEdge(s, t));
        self
    }

    /// Builder-style: append a node removal.
    pub fn remove_node(mut self, v: NodeId) -> Self {
        self.ops.push(DeltaOp::RemoveNode(v));
        self
    }

    /// Builder-style: append an attribute insertion/overwrite.
    pub fn set_attr(
        mut self,
        node: NodeId,
        key: impl Into<String>,
        value: impl Into<AttrValue>,
    ) -> Self {
        self.ops.push(DeltaOp::SetAttr { node, key: key.into(), value: value.into() });
        self
    }

    /// Builder-style: append an attribute removal.
    pub fn unset_attr(mut self, node: NodeId, key: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::UnsetAttr { node, key: key.into() });
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when there is nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One *effective* (normalized) update: what actually changed, in
/// application order. `RemoveNode` expands into its incident
/// `EdgeRemoved`s followed by a `NodeRemoved`. Incremental consumers
/// replay this stream op-by-op, in lockstep with the graph.
///
/// Attribute keys are interned as `Arc<str>`: one allocation per effective
/// mutation, shared by the recorded effect, the [`AppliedDelta::attr_changes`]
/// entry and every interested per-pattern replay — the multi-pattern
/// fan-out clones a pointer, never the string.
#[derive(Debug, Clone, PartialEq)]
pub enum EffectiveOp {
    /// A node appeared with this id and label.
    NodeAdded(NodeId, Label),
    /// An edge appeared.
    EdgeAdded(NodeId, NodeId),
    /// An edge disappeared.
    EdgeRemoved(NodeId, NodeId),
    /// A node was tombstoned (after its incident edges were removed).
    NodeRemoved(NodeId),
    /// An attribute of a live node changed to `value` (insert or
    /// overwrite — same-value sets are filtered out as no-ops).
    AttrSet {
        /// Target node.
        node: NodeId,
        /// Attribute key (interned, pointer-cheap to clone).
        key: Arc<str>,
        /// The value now stored.
        value: AttrValue,
    },
    /// An attribute that was present on a live node disappeared.
    AttrUnset {
        /// Target node.
        node: NodeId,
        /// Attribute key (interned, pointer-cheap to clone).
        key: Arc<str>,
    },
}

/// The *effective* updates of a batch after normalization: duplicate edge
/// inserts, removals of absent edges, and edges already dropped by an
/// earlier `RemoveNode` are filtered out. Incremental consumers replay
/// these without re-deriving idempotency.
#[derive(Debug, Clone, Default)]
pub struct AppliedDelta {
    /// The normalized update stream, in application order.
    pub effects: Vec<EffectiveOp>,
    /// Ids assigned to `AddNode` ops, in op order.
    pub added_nodes: Vec<(NodeId, Label)>,
    /// Edges that actually appeared.
    pub added_edges: Vec<(NodeId, NodeId)>,
    /// Edges that actually disappeared (including those dropped by
    /// `RemoveNode`), in removal order.
    pub removed_edges: Vec<(NodeId, NodeId)>,
    /// Nodes tombstoned by this batch.
    pub removed_nodes: Vec<NodeId>,
    /// `(node, key)` of every attribute that effectively changed (set to a
    /// new value or unset while present), in application order. Keys are
    /// shared with the corresponding [`EffectiveOp`] (same `Arc`).
    pub attr_changes: Vec<(NodeId, Arc<str>)>,
    /// The graph version after application.
    pub version: u64,
}

impl AppliedDelta {
    /// The normalized update stream, in application order.
    pub fn effects(&self) -> impl Iterator<Item = &EffectiveOp> + '_ {
        self.effects.iter()
    }

    /// Number of effective edge changes (the "delta size" the incremental
    /// engine's fallback heuristics reason about — attribute flips change
    /// no adjacency and therefore count zero here).
    pub fn edge_churn(&self) -> usize {
        self.added_edges.len() + self.removed_edges.len()
    }

    /// `true` when the batch changed nothing.
    pub fn is_noop(&self) -> bool {
        self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_nodes.is_empty()
            && self.attr_changes.is_empty()
    }
}

/// Applies `delta` to an immutable graph, producing the updated graph.
///
/// This is the from-scratch path (used by baselines and the equivalence
/// property tests); the incremental path lives in
/// [`DynGraph::apply`](crate::dynamic::DynGraph::apply). Attributes are
/// carried through and mutated by the attr ops (the dynamic path evaluates
/// predicates against them); display names are dropped — dynamic workloads
/// never read them.
pub fn apply_delta(g: &DiGraph, delta: &GraphDelta) -> Result<DiGraph> {
    let mut labels: Vec<Label> = g.labels().to_vec();
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.source, e.target)).collect();
    let mut attrs: Vec<Attributes> =
        g.nodes().map(|v| g.attributes(v).cloned().unwrap_or_default()).collect();

    for op in &delta.ops {
        match op {
            &DeltaOp::AddNode(label) => {
                if label == TOMBSTONE_LABEL {
                    return Err(GraphError::Parse {
                        line: 0,
                        msg: "cannot add a node with the reserved tombstone label".into(),
                    });
                }
                labels.push(label);
                attrs.push(Attributes::new());
            }
            &DeltaOp::AddEdge(s, t) => {
                check_node(s, labels.len())?;
                check_node(t, labels.len())?;
                // Mirror DynGraph: edges onto tombstoned nodes are
                // ineffective, never materialized.
                if labels[s as usize] != TOMBSTONE_LABEL && labels[t as usize] != TOMBSTONE_LABEL {
                    edges.push((s, t)); // GraphBuilder deduplicates
                }
            }
            &DeltaOp::RemoveEdge(s, t) => {
                check_node(s, labels.len())?;
                check_node(t, labels.len())?;
                edges.retain(|&e| e != (s, t));
            }
            &DeltaOp::RemoveNode(v) => {
                check_node(v, labels.len())?;
                labels[v as usize] = TOMBSTONE_LABEL;
                edges.retain(|&(s, t)| s != v && t != v);
                attrs[v as usize] = Attributes::new();
            }
            // Attr ops onto tombstoned or out-of-range nodes are no-ops,
            // not errors — mirror of the AddEdge-onto-tombstone rule.
            DeltaOp::SetAttr { node, key, value } => {
                let v = *node as usize;
                if v < labels.len() && labels[v] != TOMBSTONE_LABEL {
                    attrs[v].set(key.clone(), value.clone());
                }
            }
            DeltaOp::UnsetAttr { node, key } => {
                let v = *node as usize;
                if v < labels.len() && labels[v] != TOMBSTONE_LABEL {
                    attrs[v].remove(key);
                }
            }
        }
    }

    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for (l, a) in labels.iter().zip(attrs) {
        b.add_node_with_attrs(*l, a);
    }
    for (s, t) in edges {
        b.add_edge(s, t)?;
    }
    Ok(b.build())
}

fn check_node(v: NodeId, n: usize) -> Result<()> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(GraphError::UnknownNode(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;

    #[test]
    fn add_and_remove_edges() {
        let g = graph_from_parts(&[0, 1, 2], &[(0, 1)]).unwrap();
        let d = GraphDelta::new().add_edge(1, 2).remove_edge(0, 1);
        let g2 = apply_delta(&g, &d).unwrap();
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(1, 2));
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn add_nodes_get_dense_ids() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let d = GraphDelta::new().add_node(7).add_node(8).add_edge(1, 2);
        let g2 = apply_delta(&g, &d).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert_eq!(g2.label(1), 7);
        assert_eq!(g2.label(2), 8);
        assert!(g2.has_edge(1, 2));
    }

    #[test]
    fn remove_node_tombstones() {
        let g = graph_from_parts(&[0, 1, 0], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let d = GraphDelta::new().remove_node(1);
        let g2 = apply_delta(&g, &d).unwrap();
        assert_eq!(g2.node_count(), 3, "ids stay dense");
        assert_eq!(g2.label(1), TOMBSTONE_LABEL);
        assert_eq!(g2.edge_count(), 1, "only (2,0) survives");
        assert!(g2.has_edge(2, 0));
        assert!(g2.nodes_with_label(1).is_empty());
    }

    #[test]
    fn duplicate_and_missing_edges_are_idempotent() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let d = GraphDelta::new().add_edge(0, 1).remove_edge(1, 0);
        let g2 = apply_delta(&g, &d).unwrap();
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn edges_onto_tombstones_are_dropped() {
        let g = graph_from_parts(&[0, 1, 0], &[(0, 1)]).unwrap();
        let d = GraphDelta::new().remove_node(1).add_edge(2, 1).add_edge(1, 0).add_edge(2, 0);
        let g2 = apply_delta(&g, &d).unwrap();
        assert_eq!(g2.edge_count(), 1, "only the live-endpoint edge lands");
        assert!(g2.has_edge(2, 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        assert!(apply_delta(&g, &GraphDelta::new().add_edge(0, 5)).is_err());
        assert!(apply_delta(&g, &GraphDelta::new().remove_node(9)).is_err());
        assert!(apply_delta(&g, &GraphDelta::new().add_node(TOMBSTONE_LABEL)).is_err());
    }

    #[test]
    fn attrs_carried_through_and_mutated() {
        use crate::attrs::Attributes;
        use crate::builder::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.add_node_with_attrs(
            0,
            Attributes::from_pairs([("views", AttrValue::Int(5)), ("rate", AttrValue::Float(1.5))]),
        );
        b.add_node(1);
        let g = b.build();
        let d = GraphDelta::new()
            .set_attr(0, "views", 9i64)
            .unset_attr(0, "rate")
            .set_attr(1, "category", "music")
            .add_node(2)
            .set_attr(2, "views", 1i64);
        let g2 = apply_delta(&g, &d).unwrap();
        let a0 = g2.attributes(0).unwrap();
        assert_eq!(a0.get("views"), Some(&AttrValue::Int(9)));
        assert_eq!(a0.get("rate"), None);
        assert_eq!(
            g2.attributes(1).unwrap().get("category").and_then(|v| v.as_str()),
            Some("music")
        );
        assert_eq!(g2.attributes(2).unwrap().get("views"), Some(&AttrValue::Int(1)));
    }

    #[test]
    fn attr_ops_on_dead_or_missing_nodes_are_noops() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        // Tombstoned in the same batch, then attr ops on it, plus an attr
        // op on a node that was never added: all silently ineffective.
        let d = GraphDelta::new()
            .remove_node(1)
            .set_attr(1, "views", 3i64)
            .unset_attr(1, "views")
            .set_attr(99, "views", 3i64)
            .unset_attr(99, "views");
        let g2 = apply_delta(&g, &d).unwrap();
        assert_eq!(g2.label(1), TOMBSTONE_LABEL);
        assert!(!g2.has_attributes(), "no attribute ever landed");
    }

    #[test]
    fn remove_node_clears_attrs() {
        let g = graph_from_parts(&[0, 1], &[]).unwrap();
        let d = GraphDelta::new().set_attr(0, "views", 3i64).remove_node(0);
        let g2 = apply_delta(&g, &d).unwrap();
        assert!(!g2.has_attributes(), "tombstoned slot keeps no attributes");
    }
}
