//! Reachability and traversal utilities.
//!
//! Used by the ranking layer (relevant sets are reachability sets in the
//! match graph), by the distance-based diversity function `1 - 1/d(v1,v2)` of
//! Section 3.4 (hop distances), and by the pattern generator (connectivity
//! checks).

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};
use crate::scc::Successors;

/// A reusable BFS scratchpad: repeated traversals on the same graph reuse the
/// visited bitmap and queue instead of reallocating (perf-book: workhorse
/// collections).
#[derive(Debug)]
pub struct Bfs {
    visited: BitSet,
    queue: std::collections::VecDeque<NodeId>,
}

impl Bfs {
    /// Scratchpad for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Bfs { visited: BitSet::new(n), queue: std::collections::VecDeque::new() }
    }

    /// Visits every node reachable from `start` (including `start`), calling
    /// `on_visit` once per node.
    pub fn run(&mut self, g: &impl Successors, start: NodeId, mut on_visit: impl FnMut(NodeId)) {
        self.visited.clear();
        self.queue.clear();
        self.visited.insert(start as usize);
        self.queue.push_back(start);
        while let Some(v) = self.queue.pop_front() {
            on_visit(v);
            for &w in g.successors_of(v) {
                if self.visited.insert(w as usize) {
                    self.queue.push_back(w);
                }
            }
        }
    }

    /// Visits every node reachable from any node of `starts`.
    pub fn run_multi(
        &mut self,
        g: &impl Successors,
        starts: &[NodeId],
        mut on_visit: impl FnMut(NodeId),
    ) {
        self.visited.clear();
        self.queue.clear();
        for &s in starts {
            if self.visited.insert(s as usize) {
                self.queue.push_back(s);
            }
        }
        while let Some(v) = self.queue.pop_front() {
            on_visit(v);
            for &w in g.successors_of(v) {
                if self.visited.insert(w as usize) {
                    self.queue.push_back(w);
                }
            }
        }
    }
}

/// Set of nodes reachable from `start` via **at least one edge** (so `start`
/// itself is included only when it lies on a cycle). This is the reachability
/// notion underlying relevant sets `R(u,v)`.
pub fn strict_descendants(g: &impl Successors, start: NodeId) -> BitSet {
    let n = g.node_count();
    let mut out = BitSet::new(n);
    let mut bfs = Bfs::new(n);
    // Seed with successors rather than the node itself.
    let succ: Vec<NodeId> = g.successors_of(start).to_vec();
    bfs.run_multi(g, &succ, |v| {
        out.insert(v as usize);
    });
    out
}

/// All nodes reachable from `start`, including `start`.
pub fn descendants_inclusive(g: &impl Successors, start: NodeId) -> BitSet {
    let n = g.node_count();
    let mut out = BitSet::new(n);
    let mut bfs = Bfs::new(n);
    bfs.run(g, start, |v| {
        out.insert(v as usize);
    });
    out
}

/// `true` iff `target` is reachable from `start` via ≥ 0 edges.
pub fn reaches(g: &impl Successors, start: NodeId, target: NodeId) -> bool {
    if start == target {
        return true;
    }
    let n = g.node_count();
    let mut bfs = Bfs::new(n);
    let mut found = false;
    bfs.run(g, start, |v| {
        if v == target {
            found = true;
        }
    });
    found
}

/// Directed hop distance from `start` to `target`; `None` when unreachable.
/// `d(v, v) = 0`.
pub fn hop_distance(g: &DiGraph, start: NodeId, target: NodeId) -> Option<u32> {
    if start == target {
        return Some(0);
    }
    let mut visited = BitSet::new(g.node_count());
    let mut frontier = vec![start];
    visited.insert(start as usize);
    let mut dist = 0u32;
    while !frontier.is_empty() {
        dist += 1;
        let mut next = Vec::new();
        for v in frontier {
            for &w in g.successors(v) {
                if w == target {
                    return Some(dist);
                }
                if visited.insert(w as usize) {
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    None
}

/// Single-source hop distances (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &DiGraph, start: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.node_count()];
    dist[start as usize] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.successors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;

    fn diamond() -> DiGraph {
        // 0 → {1,2} → 3, plus a cycle 3 → 0.
        graph_from_parts(&[0; 4], &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn strict_vs_inclusive() {
        let g = diamond();
        // On the cycle, a node reaches itself via ≥1 edge.
        let s = strict_descendants(&g, 0);
        assert_eq!(s.count(), 4);
        assert!(s.contains(0));

        let dag = graph_from_parts(&[0; 3], &[(0, 1), (1, 2)]).unwrap();
        let s0 = strict_descendants(&dag, 0);
        assert!(!s0.contains(0));
        assert!(s0.contains(1) && s0.contains(2));
        let inc = descendants_inclusive(&dag, 0);
        assert!(inc.contains(0));
        assert_eq!(inc.count(), 3);
        let s2 = strict_descendants(&dag, 2);
        assert!(s2.is_empty());
    }

    #[test]
    fn reaches_and_distance() {
        let g = diamond();
        assert!(reaches(&g, 1, 2)); // 1→3→0→2
        assert_eq!(hop_distance(&g, 0, 3), Some(2));
        assert_eq!(hop_distance(&g, 0, 0), Some(0));
        let dag = graph_from_parts(&[0; 3], &[(0, 1)]).unwrap();
        assert_eq!(hop_distance(&dag, 0, 2), None);
        assert!(!reaches(&dag, 0, 2));
        assert!(reaches(&dag, 2, 2));
    }

    #[test]
    fn distances_vector() {
        let g = graph_from_parts(&[0; 4], &[(0, 1), (1, 2)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, u32::MAX]);
    }

    #[test]
    fn bfs_multi_source() {
        let g = graph_from_parts(&[0; 5], &[(0, 2), (1, 3), (2, 4)]).unwrap();
        let mut bfs = Bfs::new(5);
        let mut seen = Vec::new();
        bfs.run_multi(&g, &[0, 1], |v| seen.push(v));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Reuse the scratchpad.
        let mut seen2 = Vec::new();
        bfs.run(&g, 1, |v| seen2.push(v));
        seen2.sort_unstable();
        assert_eq!(seen2, vec![1, 3]);
    }
}
