//! Graph (de)serialization.
//!
//! Two formats are provided:
//!
//! * a line-oriented **text** format (`v <id> <label> [name]` / `e <src>
//!   <dst>`, `#` comments) convenient for fixtures and interoperability with
//!   edge-list exports of real datasets;
//! * a compact **binary snapshot** (magic `GPMG`, version, labels, edge
//!   list) built on the `bytes` crate, used by the experiment harness to
//!   cache generated graphs between runs.
//!
//! Attribute tables are not serialized; generators re-derive them. Labels and
//! topology — everything the matching semantics depend on — round-trip.

use std::io::{BufRead, BufReader, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::builder::GraphBuilder;
use crate::digraph::{DiGraph, NodeId};
use crate::error::GraphError;
use crate::Result;

// ---------------------------------------------------------------- text I/O

/// Writes `g` in the text format.
pub fn write_text(g: &DiGraph, mut w: impl Write) -> Result<()> {
    writeln!(w, "# gpm graph: {} nodes, {} edges", g.node_count(), g.edge_count())?;
    for v in g.nodes() {
        match g.name(v) {
            Some(name) if !name.is_empty() => writeln!(w, "v {v} {} {name}", g.label(v))?,
            _ => writeln!(w, "v {v} {}", g.label(v))?,
        }
    }
    for e in g.edges() {
        writeln!(w, "e {} {}", e.source, e.target)?;
    }
    Ok(())
}

/// Parses the text format.
pub fn read_text(r: impl Read) -> Result<DiGraph> {
    let reader = BufReader::new(r);
    let mut nodes: Vec<(NodeId, u32, Option<String>)> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap();
        let parse_u32 = |s: Option<&str>, what: &str| -> Result<u32> {
            s.ok_or_else(|| GraphError::Parse { line: lineno, msg: format!("missing {what}") })?
                .parse::<u32>()
                .map_err(|e| GraphError::Parse { line: lineno, msg: format!("bad {what}: {e}") })
        };
        match kind {
            "v" => {
                let id = parse_u32(parts.next(), "node id")?;
                let label = parse_u32(parts.next(), "label")?;
                let name = parts.next().map(str::to_owned);
                nodes.push((id, label, name));
            }
            "e" => {
                let s = parse_u32(parts.next(), "source")?;
                let t = parse_u32(parts.next(), "target")?;
                edges.push((s, t));
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: format!("unknown record kind {other:?}"),
                })
            }
        }
    }
    nodes.sort_unstable_by_key(|&(id, _, _)| id);
    for (i, &(id, _, _)) in nodes.iter().enumerate() {
        if id as usize != i {
            return Err(GraphError::Parse {
                line: 0,
                msg: format!("node ids must be dense 0..n; got {id} at position {i}"),
            });
        }
    }
    let mut b = GraphBuilder::with_capacity(nodes.len(), edges.len());
    for (_, label, name) in nodes {
        match name {
            Some(n) => {
                b.add_named_node(n, label);
            }
            None => {
                b.add_node(label);
            }
        }
    }
    for (s, t) in edges {
        b.add_edge(s, t)?;
    }
    Ok(b.build())
}

// -------------------------------------------------------------- binary I/O

const MAGIC: &[u8; 4] = b"GPMG";
const VERSION: u16 = 1;

/// Serializes `g` into a binary snapshot.
pub fn to_bytes(g: &DiGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + 4 * g.node_count() + 8 * g.edge_count());
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u32(g.node_count() as u32);
    buf.put_u64(g.edge_count() as u64);
    for v in g.nodes() {
        buf.put_u32(g.label(v));
    }
    for e in g.edges() {
        buf.put_u32(e.source);
        buf.put_u32(e.target);
    }
    buf.freeze()
}

/// Deserializes a binary snapshot.
pub fn from_bytes(mut data: &[u8]) -> Result<DiGraph> {
    if data.remaining() < 18 {
        return Err(GraphError::Corrupt("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let version = data.get_u16();
    if version != VERSION {
        return Err(GraphError::Corrupt(format!("unsupported version {version}")));
    }
    let n = data.get_u32() as usize;
    let m = data.get_u64() as usize;
    if data.remaining() < 4 * n + 8 * m {
        return Err(GraphError::Corrupt("truncated payload".into()));
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_node(data.get_u32());
    }
    for _ in 0..m {
        let s = data.get_u32();
        let t = data.get_u32();
        b.add_edge(s, t)?;
    }
    Ok(b.build())
}

/// Writes a binary snapshot to a file.
pub fn save_binary(g: &DiGraph, path: impl AsRef<std::path::Path>) -> Result<()> {
    std::fs::write(path, to_bytes(g))?;
    Ok(())
}

/// Reads a binary snapshot from a file.
pub fn load_binary(path: impl AsRef<std::path::Path>) -> Result<DiGraph> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;

    fn sample() -> DiGraph {
        graph_from_parts(&[2, 1, 2, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(&buf[..]).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(g2.label(v), g.label(v));
            assert_eq!(g2.successors(v), g.successors(v));
        }
    }

    #[test]
    fn text_with_names_and_comments() {
        let input = "# hello\n\nv 0 7 alice\nv 1 7 bob\ne 0 1\n";
        let g = read_text(input.as_bytes()).unwrap();
        assert_eq!(g.name(0), Some("alice"));
        assert_eq!(g.successors(0), &[1]);
        let mut out = Vec::new();
        write_text(&g, &mut out).unwrap();
        let g2 = read_text(&out[..]).unwrap();
        assert_eq!(g2.name(1), Some("bob"));
    }

    #[test]
    fn text_errors() {
        assert!(read_text("x 1 2".as_bytes()).is_err());
        assert!(read_text("v 0".as_bytes()).is_err());
        assert!(read_text("v 0 abc".as_bytes()).is_err());
        assert!(read_text("v 1 0".as_bytes()).is_err(), "non-dense ids rejected");
        assert!(read_text("v 0 0\ne 0 5".as_bytes()).is_err(), "dangling edge");
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(g2.label(v), g.label(v));
            assert_eq!(g2.successors(v), g.successors(v));
        }
    }

    #[test]
    fn binary_corruption_detected() {
        let g = sample();
        let bytes = to_bytes(&g);
        assert!(from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
        let mut vbad = bytes.to_vec();
        vbad[5] = 99;
        assert!(from_bytes(&vbad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("gpm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.gpmg");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        std::fs::remove_file(path).ok();
    }
}
