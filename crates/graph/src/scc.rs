//! Strongly connected components, condensation and topological ranks.
//!
//! Section 4 of the paper defines, for a graph `G`, the SCC graph `G_SCC`
//! obtained by collapsing each strongly connected component into one node,
//! and the *topological rank* `r(v)`:
//!
//! * `r(v) = 0` if `v`'s SCC is a leaf of `G_SCC` (out-degree 0), and
//! * `r(v) = max(1 + r(v'))` over SCC edges `(v_SCC, v'_SCC)` otherwise.
//!
//! Both the data graph and the pattern are condensed this way (`TopK` treats
//! `Q_SCC` as a DAG pattern), and the match graph is condensed when relevant
//! sets are computed. The algorithm is an iterative Tarjan so deep graphs do
//! not overflow the call stack.

use crate::csr::Csr;
use crate::digraph::{DiGraph, NodeId};

/// Anything that exposes successor slices; lets the same Tarjan run over data
/// graphs, pattern graphs and match graphs.
pub trait Successors {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Successor slice of `v`.
    fn successors_of(&self, v: NodeId) -> &[NodeId];
}

impl Successors for DiGraph {
    fn node_count(&self) -> usize {
        DiGraph::node_count(self)
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        self.successors(v)
    }
}

impl<T: Successors + ?Sized> Successors for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        (**self).successors_of(v)
    }
}

impl Successors for Csr {
    fn node_count(&self) -> usize {
        Csr::node_count(self)
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        self.neighbors(v)
    }
}

/// Maps each node to its strongly connected component.
///
/// Component ids are assigned in Tarjan emission order, which is a **reverse
/// topological order** of the condensation: every edge between distinct
/// components goes from a higher component id to a lower one. Bottom-up
/// dynamic programs can therefore just iterate component ids ascending.
#[derive(Debug, Clone)]
pub struct SccIndex {
    comp_of: Vec<u32>,
    comp_count: usize,
}

impl SccIndex {
    /// Runs iterative Tarjan over `g`.
    pub fn compute(g: &impl Successors) -> Self {
        let n = g.node_count();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp_of = vec![UNVISITED; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_count = 0u32;

        // DFS frames: (node, next successor position).
        let mut frames: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut si)) = frames.last_mut() {
                let succs = g.successors_of(v);
                if *si < succs.len() {
                    let w = succs[*si];
                    *si += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (p, _)) = frames.last_mut() {
                        lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        // v is the root of an SCC: pop it off.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }

        SccIndex { comp_of, comp_count: comp_count as usize }
    }

    /// Component id of node `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.comp_of[v as usize]
    }

    /// Number of components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.comp_count
    }

    /// Component ids, indexed by node.
    #[inline]
    pub fn components(&self) -> &[u32] {
        &self.comp_of
    }
}

/// The condensation DAG `G_SCC`, with member lists, per-component flags and
/// the paper's topological ranks.
#[derive(Debug, Clone)]
pub struct Condensation {
    index: SccIndex,
    /// DAG over components (deduplicated, self-loops removed).
    dag: Csr,
    /// Members grouped by component: `member_flat[member_off[c]..member_off[c+1]]`.
    member_off: Vec<u32>,
    member_flat: Vec<NodeId>,
    /// `true` for components with >1 member or a self-loop member: nodes in
    /// such components lie on at least one nonempty cycle.
    nontrivial: Vec<bool>,
    /// Topological ranks per component (paper Section 4).
    rank: Vec<u32>,
}

impl Condensation {
    /// Condenses `g`.
    pub fn compute(g: &impl Successors) -> Self {
        let index = SccIndex::compute(g);
        let n = g.node_count();
        let nc = index.component_count();

        let mut size = vec![0u32; nc];
        for v in 0..n {
            size[index.comp_of[v] as usize] += 1;
        }
        let mut member_off = Vec::with_capacity(nc + 1);
        let mut acc = 0u32;
        member_off.push(0u32);
        for s in &size {
            acc += s;
            member_off.push(acc);
        }
        let mut cursor = member_off[..nc].to_vec();
        let mut member_flat = vec![0 as NodeId; n];
        for v in 0..n as NodeId {
            let c = index.comp_of[v as usize] as usize;
            member_flat[cursor[c] as usize] = v;
            cursor[c] += 1;
        }

        let mut nontrivial: Vec<bool> = size.iter().map(|&s| s > 1).collect();
        let mut comp_edges: Vec<(u32, u32)> = Vec::new();
        for v in 0..n as NodeId {
            let cv = index.comp_of[v as usize];
            for &w in g.successors_of(v) {
                let cw = index.comp_of[w as usize];
                if cv == cw {
                    if v == w {
                        nontrivial[cv as usize] = true;
                    }
                } else {
                    comp_edges.push((cv, cw));
                }
            }
        }
        comp_edges.sort_unstable();
        comp_edges.dedup();
        let dag = Csr::from_edges(nc, &comp_edges);

        // Tarjan numbers components in reverse topological order, so every
        // DAG edge goes from a higher id to a lower id; iterate ascending.
        let mut rank = vec![0u32; nc];
        for c in 0..nc as u32 {
            let mut r = 0;
            for &s in dag.neighbors(c) {
                debug_assert!(s < c, "component ids must be reverse-topological");
                r = r.max(1 + rank[s as usize]);
            }
            rank[c as usize] = r;
        }

        Condensation { index, dag, member_off, member_flat, nontrivial, rank }
    }

    /// The underlying node→component mapping.
    pub fn index(&self) -> &SccIndex {
        &self.index
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.index.component_count()
    }

    /// Component id of node `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.index.component_of(v)
    }

    /// Members of component `c` (sorted by insertion during grouping).
    pub fn members(&self, c: u32) -> &[NodeId] {
        let (a, b) =
            (self.member_off[c as usize] as usize, self.member_off[c as usize + 1] as usize);
        &self.member_flat[a..b]
    }

    /// Successor components of `c` in the condensation DAG.
    pub fn comp_successors(&self, c: u32) -> &[u32] {
        self.dag.neighbors(c)
    }

    /// `true` if component `c` contains a nonempty cycle (size > 1 or a
    /// self-loop). Nodes of such components reach themselves via ≥1 edge.
    #[inline]
    pub fn is_nontrivial(&self, c: u32) -> bool {
        self.nontrivial[c as usize]
    }

    /// Topological rank of component `c` (0 = leaf of the condensation).
    #[inline]
    pub fn comp_rank(&self, c: u32) -> u32 {
        self.rank[c as usize]
    }

    /// Topological rank `r(v)` of a node, per the paper's definition.
    #[inline]
    pub fn node_rank(&self, v: NodeId) -> u32 {
        self.rank[self.index.component_of(v) as usize]
    }

    /// Maximum rank over all components ("height" of the graph).
    pub fn height(&self) -> u32 {
        self.rank.iter().copied().max().unwrap_or(0)
    }

    /// Component ids in ascending order — i.e. reverse topological order,
    /// suitable for bottom-up dynamic programming.
    pub fn reverse_topological(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.component_count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;

    /// Two 2-cycles bridged by an edge plus a tail.
    fn fixture() -> DiGraph {
        // 0⇄1 → 2⇄3 → 4
        graph_from_parts(&[0; 5], &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn scc_grouping() {
        let g = fixture();
        let idx = SccIndex::compute(&g);
        assert_eq!(idx.component_count(), 3);
        assert_eq!(idx.component_of(0), idx.component_of(1));
        assert_eq!(idx.component_of(2), idx.component_of(3));
        assert_ne!(idx.component_of(0), idx.component_of(2));
        assert_ne!(idx.component_of(4), idx.component_of(2));
    }

    #[test]
    fn reverse_topological_ids() {
        let g = fixture();
        let idx = SccIndex::compute(&g);
        // Edges must go from higher comp id to lower comp id.
        for v in g.nodes() {
            for &w in g.successors(v) {
                let (cv, cw) = (idx.component_of(v), idx.component_of(w));
                if cv != cw {
                    assert!(cv > cw, "edge {v}->{w} maps to comps {cv}->{cw}");
                }
            }
        }
    }

    #[test]
    fn condensation_ranks() {
        let g = fixture();
        let c = Condensation::compute(&g);
        // Node 4 is the only leaf (rank 0); the 2⇄3 SCC has rank 1; 0⇄1 rank 2.
        assert_eq!(c.node_rank(4), 0);
        assert_eq!(c.node_rank(2), 1);
        assert_eq!(c.node_rank(3), 1);
        assert_eq!(c.node_rank(0), 2);
        assert_eq!(c.height(), 2);
        assert!(c.is_nontrivial(c.component_of(0)));
        assert!(!c.is_nontrivial(c.component_of(4)));
    }

    #[test]
    fn self_loop_is_nontrivial() {
        let g = graph_from_parts(&[0, 0], &[(0, 0), (0, 1)]).unwrap();
        let c = Condensation::compute(&g);
        assert_eq!(c.component_count(), 2);
        assert!(c.is_nontrivial(c.component_of(0)));
        assert!(!c.is_nontrivial(c.component_of(1)));
        assert_eq!(c.node_rank(0), 1);
    }

    #[test]
    fn dag_members_and_successors() {
        let g = fixture();
        let c = Condensation::compute(&g);
        let c01 = c.component_of(0);
        let c23 = c.component_of(2);
        let c4 = c.component_of(4);
        let mut m = c.members(c01).to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1]);
        assert_eq!(c.comp_successors(c01), &[c23]);
        assert_eq!(c.comp_successors(c23), &[c4]);
        assert_eq!(c.comp_successors(c4), &[] as &[u32]);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // A 200k-long chain would overflow a recursive Tarjan.
        let n = 200_000u32;
        let labels = vec![0u32; n as usize];
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph_from_parts(&labels, &edges).unwrap();
        let c = Condensation::compute(&g);
        assert_eq!(c.component_count(), n as usize);
        assert_eq!(c.node_rank(0), n - 1);
        assert_eq!(c.node_rank(n - 1), 0);
    }

    #[test]
    fn single_big_cycle() {
        let n = 1000u32;
        let labels = vec![0u32; n as usize];
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = graph_from_parts(&labels, &edges).unwrap();
        let c = Condensation::compute(&g);
        assert_eq!(c.component_count(), 1);
        assert!(c.is_nontrivial(0));
        assert_eq!(c.height(), 0);
    }
}
