//! Graph summary statistics for the experiment harness and dataset tables.

use crate::digraph::{DiGraph, Label};
use crate::scc::Condensation;

/// Summary of a data graph, printed by `experiments datasets` to mirror the
/// dataset description table in Section 6 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub distinct_labels: usize,
    pub max_out_degree: usize,
    pub max_in_degree: usize,
    pub avg_out_degree: f64,
    pub scc_count: usize,
    pub largest_scc: usize,
    pub height: u32,
    pub is_dag: bool,
}

impl GraphStats {
    /// Computes all statistics (runs one condensation).
    pub fn compute(g: &DiGraph) -> Self {
        let cond = Condensation::compute(g);
        let mut largest = 0usize;
        let mut any_nontrivial = false;
        for c in 0..cond.component_count() as u32 {
            largest = largest.max(cond.members(c).len());
            any_nontrivial |= cond.is_nontrivial(c);
        }
        let n = g.node_count();
        let mut max_out = 0;
        let mut max_in = 0;
        for v in g.nodes() {
            max_out = max_out.max(g.out_degree(v));
            max_in = max_in.max(g.in_degree(v));
        }
        GraphStats {
            nodes: n,
            edges: g.edge_count(),
            distinct_labels: g.distinct_label_count(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            avg_out_degree: if n == 0 { 0.0 } else { g.edge_count() as f64 / n as f64 },
            scc_count: cond.component_count(),
            largest_scc: largest,
            height: cond.height(),
            is_dag: !any_nontrivial,
        }
    }
}

/// Histogram of node labels: `(label, count)` sorted by label.
pub fn label_histogram(g: &DiGraph) -> Vec<(Label, usize)> {
    let mut counts: Vec<(Label, usize)> = Vec::new();
    let mut labels: Vec<Label> = g.labels().to_vec();
    labels.sort_unstable();
    for l in labels {
        match counts.last_mut() {
            Some((last, c)) if *last == l => *c += 1,
            _ => counts.push((l, 1)),
        }
    }
    counts
}

/// Out-degree distribution: `dist[d]` = number of nodes with out-degree `d`.
pub fn out_degree_distribution(g: &DiGraph) -> Vec<usize> {
    let max = g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0);
    let mut dist = vec![0usize; max + 1];
    for v in g.nodes() {
        dist[g.out_degree(v)] += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;

    #[test]
    fn stats_on_mixed_graph() {
        // 0⇄1, 1→2, labels 5,5,7.
        let g = graph_from_parts(&[5, 5, 7], &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.distinct_labels, 2);
        assert_eq!(s.scc_count, 2);
        assert_eq!(s.largest_scc, 2);
        assert!(!s.is_dag);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.avg_out_degree - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dag_detection() {
        let g = graph_from_parts(&[0, 0], &[(0, 1)]).unwrap();
        assert!(GraphStats::compute(&g).is_dag);
        let c = graph_from_parts(&[0], &[(0, 0)]).unwrap();
        assert!(!GraphStats::compute(&c).is_dag);
    }

    #[test]
    fn histograms() {
        let g = graph_from_parts(&[3, 1, 3, 3], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(label_histogram(&g), vec![(1, 1), (3, 3)]);
        let dist = out_degree_distribution(&g);
        assert_eq!(dist, vec![3, 0, 0, 1]);
    }
}
