//! [`DynGraph`]: a mutable adjacency structure for incremental maintenance.
//!
//! The CSR [`DiGraph`](crate::DiGraph) is immutable by design — the static
//! algorithms want packed, cache-friendly adjacency. The dynamic path
//! instead keeps per-node sorted edge sets that support `O(log d)` insert,
//! remove and membership while preserving deterministic iteration order,
//! applies [`GraphDelta`] batches in place with a monotonically increasing
//! **version**, and can snapshot back into a `DiGraph` whenever a
//! from-scratch baseline or fallback recompute needs one.
//!
//! The label index (`nodes_with_label`) is maintained incrementally too:
//! candidate enumeration after node additions must not rescan the graph.

use std::collections::BTreeSet;

use crate::attrs::Attributes;
use crate::builder::GraphBuilder;
use crate::delta::{AppliedDelta, DeltaOp, EffectiveOp, GraphDelta, TOMBSTONE_LABEL};
use crate::digraph::{DiGraph, Label, NodeId};
use crate::error::GraphError;
use crate::Result;

/// A directed labeled graph under updates.
#[derive(Debug, Clone)]
pub struct DynGraph {
    labels: Vec<Label>,
    fwd: Vec<BTreeSet<NodeId>>,
    rev: Vec<BTreeSet<NodeId>>,
    /// Sorted node ids per label (tombstoned nodes excluded).
    by_label: std::collections::BTreeMap<Label, BTreeSet<NodeId>>,
    /// Per-node attribute maps (empty for attribute-less nodes; cleared on
    /// tombstone — a removed slot accrues no state of any kind).
    attrs: Vec<Attributes>,
    edge_count: usize,
    version: u64,
}

impl DynGraph {
    /// Builds the dynamic mirror of `g` at version 0.
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.node_count();
        let mut fwd = vec![BTreeSet::new(); n];
        let mut rev = vec![BTreeSet::new(); n];
        for e in g.edges() {
            fwd[e.source as usize].insert(e.target);
            rev[e.target as usize].insert(e.source);
        }
        let mut by_label: std::collections::BTreeMap<Label, BTreeSet<NodeId>> =
            std::collections::BTreeMap::new();
        for v in g.nodes() {
            by_label.entry(g.label(v)).or_default().insert(v);
        }
        let attrs: Vec<Attributes> =
            g.nodes().map(|v| g.attributes(v).cloned().unwrap_or_default()).collect();
        DynGraph {
            labels: g.labels().to_vec(),
            fwd,
            rev,
            by_label,
            attrs,
            edge_count: g.edge_count(),
            version: 0,
        }
    }

    /// Number of node slots (tombstones included — ids stay dense).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Current version (one increment per applied batch).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Label of `v` ([`TOMBSTONE_LABEL`] when removed).
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// `true` when `v` has been tombstoned.
    #[inline]
    pub fn is_removed(&self, v: NodeId) -> bool {
        self.labels[v as usize] == TOMBSTONE_LABEL
    }

    /// Attributes of `v` (empty for attribute-less and tombstoned nodes).
    #[inline]
    pub fn attributes(&self, v: NodeId) -> &Attributes {
        &self.attrs[v as usize]
    }

    /// One attribute of `v`.
    #[inline]
    pub fn attr(&self, v: NodeId, key: &str) -> Option<&crate::attrs::AttrValue> {
        self.attrs[v as usize].get(key)
    }

    /// Successor set of `v` (sorted ascending).
    #[inline]
    pub fn successors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.fwd[v as usize].iter().copied()
    }

    /// Predecessor set of `v` (sorted ascending).
    #[inline]
    pub fn predecessors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.rev[v as usize].iter().copied()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.fwd[v as usize].len()
    }

    /// `true` iff the edge `(s, t)` exists.
    #[inline]
    pub fn has_edge(&self, s: NodeId, t: NodeId) -> bool {
        self.fwd[s as usize].contains(&t)
    }

    /// Live nodes with `label`, ascending.
    pub fn nodes_with_label(&self, label: Label) -> impl Iterator<Item = NodeId> + '_ {
        self.by_label.get(&label).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Number of live nodes carrying `label` — the candidate count a
    /// label-only predicate enumerates. O(log labels), no scan; this is
    /// the shared index the multi-pattern registry sizes its candidate
    /// universe from.
    pub fn label_count(&self, label: Label) -> usize {
        self.by_label.get(&label).map_or(0, |s| s.len())
    }

    /// `(label, live node count)` for every label currently present,
    /// ascending by label. Tombstoned nodes are excluded; labels whose
    /// last node was removed report as absent.
    pub fn live_labels(&self) -> impl Iterator<Item = (Label, usize)> + '_ {
        self.by_label.iter().filter(|(_, s)| !s.is_empty()).map(|(&l, s)| (l, s.len()))
    }

    /// Number of live (non-tombstoned) nodes.
    pub fn live_node_count(&self) -> usize {
        self.by_label.values().map(|s| s.len()).sum()
    }

    /// Applies one batch in place, returning the normalized effective
    /// updates. On error the graph is left **unchanged** (the batch is
    /// validated before any mutation).
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<AppliedDelta> {
        self.apply_with(delta, |_, _| {})
    }

    /// As [`Self::apply`], invoking `hook` after **every single effective
    /// mutation** with the graph in exactly that intermediate state. This
    /// is the contract incremental consumers need: a `RemoveNode` expands
    /// into one hook call per dropped edge (each observing the edge
    /// already gone but later edges still present) before the tombstone
    /// call — cascade algorithms that walk current adjacency stay in
    /// lockstep.
    pub fn apply_with(
        &mut self,
        delta: &GraphDelta,
        mut hook: impl FnMut(&DynGraph, &EffectiveOp),
    ) -> Result<AppliedDelta> {
        // Validation pass: node references must be in range at the point
        // their op executes (additions extend the range mid-batch). Attr
        // ops are exempt — on a tombstoned or never-added node they are
        // recorded no-ops, never errors.
        let mut n = self.node_count();
        for op in &delta.ops {
            match *op {
                DeltaOp::AddNode(label) => {
                    if label == TOMBSTONE_LABEL {
                        return Err(GraphError::Parse {
                            line: 0,
                            msg: "cannot add a node with the reserved tombstone label".into(),
                        });
                    }
                    n += 1;
                }
                DeltaOp::AddEdge(s, t) | DeltaOp::RemoveEdge(s, t) => {
                    for v in [s, t] {
                        if v as usize >= n {
                            return Err(GraphError::UnknownNode(v));
                        }
                    }
                }
                DeltaOp::RemoveNode(v) => {
                    if v as usize >= n {
                        return Err(GraphError::UnknownNode(v));
                    }
                }
                DeltaOp::SetAttr { .. } | DeltaOp::UnsetAttr { .. } => {}
            }
        }

        let mut out = AppliedDelta::default();
        macro_rules! emit {
            ($self:ident, $eff:expr) => {{
                let eff = $eff;
                hook(&*$self, &eff);
                out.effects.push(eff);
            }};
        }
        for op in &delta.ops {
            match *op {
                DeltaOp::AddNode(label) => {
                    let id = self.labels.len() as NodeId;
                    self.labels.push(label);
                    self.fwd.push(BTreeSet::new());
                    self.rev.push(BTreeSet::new());
                    self.attrs.push(Attributes::new());
                    self.by_label.entry(label).or_default().insert(id);
                    out.added_nodes.push((id, label));
                    emit!(self, EffectiveOp::NodeAdded(id, label));
                }
                DeltaOp::AddEdge(s, t) => {
                    // Tombstoned endpoints: the slot is never reused, so
                    // attaching a new edge to a dead node would contradict
                    // removal semantics. Treated as ineffective (not an
                    // error) because generated streams may legitimately
                    // batch a RemoveNode ahead of an AddEdge to the same
                    // node. RemoveEdge needs no such guard — a tombstone
                    // has no edges left to remove.
                    if self.is_removed(s) || self.is_removed(t) {
                        continue;
                    }
                    if self.fwd[s as usize].insert(t) {
                        self.rev[t as usize].insert(s);
                        self.edge_count += 1;
                        out.added_edges.push((s, t));
                        emit!(self, EffectiveOp::EdgeAdded(s, t));
                    }
                }
                DeltaOp::RemoveEdge(s, t) => {
                    if self.fwd[s as usize].remove(&t) {
                        self.rev[t as usize].remove(&s);
                        self.edge_count -= 1;
                        out.removed_edges.push((s, t));
                        emit!(self, EffectiveOp::EdgeRemoved(s, t));
                    }
                }
                DeltaOp::RemoveNode(v) => {
                    if self.is_removed(v) {
                        continue;
                    }
                    // Strip incident edges one at a time — the hook must
                    // observe each intermediate adjacency state.
                    let outgoing: Vec<NodeId> = self.fwd[v as usize].iter().copied().collect();
                    for t in outgoing {
                        self.fwd[v as usize].remove(&t);
                        self.rev[t as usize].remove(&v);
                        self.edge_count -= 1;
                        out.removed_edges.push((v, t));
                        emit!(self, EffectiveOp::EdgeRemoved(v, t));
                    }
                    let incoming: Vec<NodeId> = self.rev[v as usize].iter().copied().collect();
                    for s in incoming {
                        self.rev[v as usize].remove(&s);
                        self.fwd[s as usize].remove(&v);
                        self.edge_count -= 1;
                        out.removed_edges.push((s, v));
                        emit!(self, EffectiveOp::EdgeRemoved(s, v));
                    }
                    let label = self.labels[v as usize];
                    if let Some(set) = self.by_label.get_mut(&label) {
                        set.remove(&v);
                    }
                    self.labels[v as usize] = TOMBSTONE_LABEL;
                    self.attrs[v as usize] = Attributes::new();
                    out.removed_nodes.push(v);
                    emit!(self, EffectiveOp::NodeRemoved(v));
                }
                DeltaOp::SetAttr { node, ref key, ref value } => {
                    // Tombstoned / never-added targets: recorded no-op
                    // (mirror of the AddEdge-onto-tombstone rule — streams
                    // may batch a RemoveNode ahead of a SetAttr). Setting
                    // the stored value again is idempotent, so replays see
                    // only *changes*.
                    if node as usize >= self.labels.len() || self.is_removed(node) {
                        continue;
                    }
                    if self.attrs[node as usize].get(key) == Some(value) {
                        continue;
                    }
                    self.attrs[node as usize].set(key.clone(), value.clone());
                    // Intern once; the change record and the effect share it.
                    let key: std::sync::Arc<str> = std::sync::Arc::from(key.as_str());
                    out.attr_changes.push((node, key.clone()));
                    emit!(self, EffectiveOp::AttrSet { node, key, value: value.clone() });
                }
                DeltaOp::UnsetAttr { node, ref key } => {
                    if node as usize >= self.labels.len() || self.is_removed(node) {
                        continue;
                    }
                    if self.attrs[node as usize].remove(key).is_none() {
                        continue;
                    }
                    let key: std::sync::Arc<str> = std::sync::Arc::from(key.as_str());
                    out.attr_changes.push((node, key.clone()));
                    emit!(self, EffectiveOp::AttrUnset { node, key });
                }
            }
        }
        self.version += 1;
        out.version = self.version;
        Ok(out)
    }

    /// Packs the current state into an immutable [`DiGraph`], attributes
    /// included — static recomputes on the snapshot see exactly the
    /// predicate environment the dynamic path maintains.
    pub fn snapshot(&self) -> DiGraph {
        let mut b = GraphBuilder::with_capacity(self.node_count(), self.edge_count);
        for (&l, a) in self.labels.iter().zip(&self.attrs) {
            b.add_node_with_attrs(l, a.clone());
        }
        for (s, succs) in self.fwd.iter().enumerate() {
            for &t in succs {
                b.add_edge(s as NodeId, t).expect("dynamic edges are in range");
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;

    fn sample() -> DiGraph {
        graph_from_parts(&[0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap()
    }

    #[test]
    fn mirror_and_snapshot_roundtrip() {
        let g = sample();
        let dg = DynGraph::from_digraph(&g);
        assert_eq!(dg.node_count(), 4);
        assert_eq!(dg.edge_count(), 4);
        assert_eq!(dg.version(), 0);
        let snap = dg.snapshot();
        assert_eq!(snap.node_count(), g.node_count());
        assert_eq!(snap.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(snap.label(v), g.label(v));
            assert_eq!(snap.successors(v), g.successors(v));
        }
    }

    #[test]
    fn apply_matches_immutable_apply_delta() {
        let g = sample();
        let delta = GraphDelta::new()
            .add_node(1)
            .add_edge(3, 4)
            .remove_edge(0, 1)
            .remove_node(2)
            .add_edge(4, 0);
        let mut dg = DynGraph::from_digraph(&g);
        let applied = dg.apply(&delta).unwrap();
        let expect = crate::delta::apply_delta(&g, &delta).unwrap();

        assert_eq!(dg.version(), 1);
        assert_eq!(applied.added_nodes, vec![(4, 1)]);
        assert_eq!(applied.removed_nodes, vec![2]);
        // (1,2) and (2,3) disappear via RemoveNode, (0,1) explicitly.
        assert_eq!(applied.removed_edges.len(), 3);
        assert_eq!(applied.edge_churn(), 5);

        let snap = dg.snapshot();
        assert_eq!(snap.node_count(), expect.node_count());
        assert_eq!(snap.edge_count(), expect.edge_count());
        for v in expect.nodes() {
            assert_eq!(snap.label(v), expect.label(v));
            assert_eq!(snap.successors(v), expect.successors(v));
        }
    }

    #[test]
    fn label_index_tracks_updates() {
        let g = sample();
        let mut dg = DynGraph::from_digraph(&g);
        assert_eq!(dg.nodes_with_label(0).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(dg.label_count(0), 2);
        assert_eq!(dg.live_node_count(), 4);
        dg.apply(&GraphDelta::new().add_node(0).remove_node(0)).unwrap();
        assert_eq!(dg.nodes_with_label(0).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(dg.label_count(0), 2);
        assert_eq!(dg.live_node_count(), 4, "one added, one tombstoned");
        assert!(dg.is_removed(0));
        assert_eq!(dg.nodes_with_label(TOMBSTONE_LABEL).count(), 0, "tombstones unindexed");
        assert_eq!(dg.label_count(TOMBSTONE_LABEL), 0);
        assert_eq!(
            dg.live_labels().collect::<Vec<_>>(),
            vec![(0, 2), (1, 1), (2, 1)],
            "histogram over live nodes only"
        );
    }

    #[test]
    fn edges_onto_tombstones_are_noops() {
        let g = sample();
        let mut dg = DynGraph::from_digraph(&g);
        // Same batch: RemoveNode ahead of AddEdge to the dead node (the
        // shape datagen's pre-batch validation can emit).
        let applied =
            dg.apply(&GraphDelta::new().remove_node(1).add_edge(0, 1).add_edge(1, 2)).unwrap();
        assert!(applied.added_edges.is_empty(), "tombstoned endpoints accrue no edges");
        assert_eq!(dg.successors(1).count() + dg.predecessors(1).count(), 0);
        // Later batch: still a no-op, and the immutable path agrees.
        let applied2 = dg.apply(&GraphDelta::new().add_edge(3, 1)).unwrap();
        assert!(applied2.added_edges.is_empty());
        let expect = crate::delta::apply_delta(
            &g,
            &GraphDelta::new().remove_node(1).add_edge(0, 1).add_edge(1, 2).add_edge(3, 1),
        )
        .unwrap();
        assert_eq!(dg.edge_count(), expect.edge_count());
        assert_eq!(dg.snapshot().edge_count(), expect.edge_count());
    }

    #[test]
    fn attr_mutations_roundtrip_and_mirror_immutable_path() {
        use crate::attrs::AttrValue;
        let g = sample();
        let mut dg = DynGraph::from_digraph(&g);
        let delta = GraphDelta::new()
            .set_attr(0, "views", 10i64)
            .set_attr(0, "views", 10i64) // idempotent: second set is a no-op
            .set_attr(1, "category", "music")
            .set_attr(0, "views", 12i64) // overwrite is effective
            .unset_attr(1, "category")
            .unset_attr(1, "category"); // unset of absent key is a no-op
        let applied = dg.apply(&delta).unwrap();
        let want: Vec<(NodeId, std::sync::Arc<str>)> = vec![
            (0, "views".into()),
            (1, "category".into()),
            (0, "views".into()),
            (1, "category".into()),
        ];
        assert_eq!(applied.attr_changes, want);
        assert_eq!(applied.effects.len(), 4, "two of six ops were no-ops");
        assert!(!applied.is_noop());
        assert_eq!(applied.edge_churn(), 0, "attr flips are not edge churn");
        assert_eq!(dg.attr(0, "views"), Some(&AttrValue::Int(12)));
        assert_eq!(dg.attr(1, "category"), None);

        // Snapshot carries the attributes; the immutable path agrees.
        let snap = dg.snapshot();
        assert_eq!(snap.attributes(0).unwrap().get("views"), Some(&AttrValue::Int(12)));
        let expect = crate::delta::apply_delta(&g, &delta).unwrap();
        for v in expect.nodes() {
            assert_eq!(snap.attributes(v), expect.attributes(v), "node {v}");
        }
    }

    /// Regression (mirror of the AddEdge-onto-tombstone fix): attr ops
    /// targeting a tombstoned or never-added node are recorded no-ops in
    /// both application paths, and a tombstone wipes existing attributes.
    #[test]
    fn attr_ops_on_tombstoned_or_missing_nodes_are_noops() {
        let g = sample();
        let mut dg = DynGraph::from_digraph(&g);
        dg.apply(&GraphDelta::new().set_attr(1, "views", 7i64)).unwrap();
        assert!(dg.attr(1, "views").is_some());

        // Same batch: RemoveNode ahead of attr ops on the dead node, plus
        // attr ops on an id that was never added.
        let delta = GraphDelta::new()
            .remove_node(1)
            .set_attr(1, "views", 9i64)
            .unset_attr(1, "views")
            .set_attr(42, "views", 9i64)
            .unset_attr(42, "views");
        let mut hook_effects = 0usize;
        let applied = dg.apply_with(&delta, |_, _| hook_effects += 1).unwrap();
        assert!(applied.attr_changes.is_empty(), "dead/missing slots accrue no attr state");
        assert_eq!(dg.attributes(1).len(), 0, "tombstone wiped the old attributes");
        // Only the structural effects of RemoveNode reached the hook.
        assert_eq!(hook_effects, applied.effects.len());
        assert!(applied
            .effects()
            .all(|e| !matches!(e, EffectiveOp::AttrSet { .. } | EffectiveOp::AttrUnset { .. })));

        // Later batch: still a no-op, and the immutable path agrees.
        let applied2 = dg.apply(&GraphDelta::new().set_attr(1, "x", 1i64)).unwrap();
        assert!(applied2.is_noop());
        let expect = crate::delta::apply_delta(
            &crate::delta::apply_delta(&g, &GraphDelta::new().set_attr(1, "views", 7i64)).unwrap(),
            &delta,
        )
        .unwrap();
        assert!(expect.attributes(1).is_none_or(|a| a.is_empty()));
        assert_eq!(dg.snapshot().has_attributes(), expect.has_attributes());
    }

    #[test]
    fn failed_batch_leaves_graph_unchanged() {
        let g = sample();
        let mut dg = DynGraph::from_digraph(&g);
        let bad = GraphDelta::new().add_edge(0, 2).add_edge(0, 99);
        assert!(dg.apply(&bad).is_err());
        assert_eq!(dg.version(), 0);
        assert!(!dg.has_edge(0, 2), "earlier ops of a failed batch are not applied");
    }

    #[test]
    fn idempotent_ops_are_filtered() {
        let g = sample();
        let mut dg = DynGraph::from_digraph(&g);
        let applied =
            dg.apply(&GraphDelta::new().add_edge(0, 1).remove_edge(1, 0).remove_node(3)).unwrap();
        assert!(applied.added_edges.is_empty());
        assert_eq!(applied.removed_edges, vec![(0, 3), (2, 3)], "incoming in source order");
        let applied2 = dg.apply(&GraphDelta::new().remove_node(3)).unwrap();
        assert!(applied2.is_noop() || applied2.removed_nodes.is_empty());
    }
}
