//! Structured phase tracing: [`Span`]s collected into a per-batch
//! [`BatchTrace`] tree.
//!
//! A span is cheap to create and `Sync`, so a parent span can be shared
//! by reference into pool-worker closures and each worker opens its own
//! children — the finished trace then shows *which* thread ran each
//! phase (`thread`, the dense ordinal from
//! [`thread_ordinal`](crate::thread_ordinal)). Timestamps are monotonic
//! nanoseconds relative to the batch root, so a trace is self-contained
//! and diffable.
//!
//! When tracing is disabled the whole API degrades to no-ops that never
//! read the clock: [`Span::disabled`] (and children of a disabled span)
//! carry no allocation and no clock read, which is what keeps the
//! disabled-telemetry overhead near zero. Enabled spans read the fast
//! tick clock ([`crate::clock`]) exactly twice, at open and at close.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock;
use crate::metrics::{format_seconds, json_string, thread_ordinal};

/// One finished (or still-open) node of a trace tree, in the flat
/// parent-indexed form the collector stores.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Index of the parent span in the trace's `spans` vec; `None` for
    /// the root.
    pub parent: Option<u32>,
    /// Phase name (`"ingest"`, `"prepare"`, `"extract"`, …).
    pub name: &'static str,
    /// Start offset from the trace root start, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 until the span closes).
    pub duration_ns: u64,
    /// Dense ordinal of the thread that *opened* the span.
    pub thread: u32,
    /// Point events recorded on this span (`(offset ns, text)`), e.g.
    /// budget-fallback decisions.
    pub events: Vec<(u64, String)>,
    /// Free-form detail attached at close (`pattern=3 outputs=120`).
    pub detail: String,
}

/// Preallocated record slots per batch — sized past the deepest traces
/// the stack produces (a registry batch with intra-pattern splits opens
/// a few dozen spans); later spans spill to the overflow mutex.
const RECORD_SLOTS: usize = 64;

/// One preallocated record cell. Exactly one span ever writes it (the
/// span that claimed its index from the collector's counter), exactly
/// once (guarded by `SpanInner::finished`), publishing with a `Release`
/// store of `ready`; readers check `ready` with `Acquire` before
/// touching `rec`. That single-writer discipline is what `Sync` asserts.
#[derive(Default)]
struct Slot {
    ready: AtomicBool,
    rec: UnsafeCell<Option<SpanRecord>>,
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `rec` is only readable through the `ready` protocol; the flag
        // alone is the debuggable surface.
        f.debug_struct("Slot").field("ready", &self.ready).finish_non_exhaustive()
    }
}

// SAFETY: see the `Slot` docs — per-slot single writer, single write,
// Release/Acquire publication through `ready`.
unsafe impl Sync for Slot {}

/// Shared collector for one trace-collecting batch. Opening a span only
/// claims an index from `next` (no lock); the span's finished record
/// lands in its own preallocated slot at close — only spans past
/// [`RECORD_SLOTS`] touch the overflow mutex, so a whole batch of
/// closes coalesces into the single lock acquisition
/// [`Span::into_trace`] makes to drain the overflow.
#[derive(Debug)]
struct Collector {
    epoch_ticks: u64,
    slots: Box<[Slot]>,
    overflow: Mutex<Vec<(u32, SpanRecord)>>,
    next: AtomicU32,
}

impl Collector {
    fn now_ns(&self) -> u64 {
        clock::ticks_to_ns(clock::now_ticks().saturating_sub(self.epoch_ticks))
    }
}

/// Rarely-used span attachments, kept out of the hot open/close path:
/// the per-span mutex is only locked when `event`/`detail` were actually
/// called (tracked by `SpanInner::has_extra`).
#[derive(Debug, Default)]
struct Extra {
    detail: String,
    events: Vec<(u64, String)>,
}

/// An enabled span: claims a record index at open and files a full
/// [`SpanRecord`] into its collector slot at close.
#[derive(Debug)]
struct SpanInner {
    collector: Arc<Collector>,
    index: u32,
    parent: Option<u32>,
    name: &'static str,
    thread: u32,
    start_ticks: u64,
    start_ns: u64,
    /// Set once on close; guards against double-finish from Drop.
    finished: AtomicU64,
    has_extra: AtomicU32,
    extra: Mutex<Extra>,
}

/// A handle on one open phase of a batch. Create children with
/// [`Span::child`], attach point events with [`Span::event`], and close
/// with [`Span::finish`] (or implicitly on drop). Disabled spans
/// ([`Span::disabled`]) are free: no allocation, no clock reads. The
/// inner state lives inline (no per-span `Arc`): a span is shared by
/// `&Span` into worker closures, never cloned, and an enabled span
/// allocates nothing of its own — its record moves into the collector
/// table when it closes.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
    /// Set on sampled-out batch roots: no collector, no children, just
    /// the two clock reads needed to keep the root latency histogram
    /// honest (see [`Span::timed_root`]).
    timed: Option<TimedRoot>,
}

/// The timing-only root of a sampled-out batch: name + start tick.
#[derive(Debug)]
struct TimedRoot {
    name: &'static str,
    start_ticks: u64,
}

impl Span {
    /// The no-op span: children are no-ops, events vanish, finish is
    /// free. Instrumented code paths take `&Span` unconditionally and
    /// callers pass this when tracing is off.
    pub fn disabled() -> Span {
        Span { inner: None, timed: None }
    }

    /// A timing-only root for a sampled-out batch: children and events
    /// are no-ops (so the whole span tree under it costs nothing), but
    /// the root duration is still measured — folded into the phase
    /// histogram at [`finish_batch`], and grounds for a skeleton
    /// slow-batch capture when it crosses the recorder threshold.
    ///
    /// [`finish_batch`]: crate::Telemetry::finish_batch
    pub(crate) fn timed_root(name: &'static str) -> Span {
        Span { inner: None, timed: Some(TimedRoot { name, start_ticks: clock::now_ticks() }) }
    }

    /// For a timing-only root: its name and elapsed nanoseconds (read
    /// now). `None` for every other span kind.
    pub(crate) fn timed_elapsed(&self) -> Option<(&'static str, u64)> {
        let t = self.timed.as_ref()?;
        Some((t.name, clock::ticks_to_ns(clock::now_ticks().saturating_sub(t.start_ticks))))
    }

    /// `true` when this span records (the gate hot paths use to skip
    /// building detail strings).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a fresh trace-collecting root span — one per batch.
    pub(crate) fn root(name: &'static str) -> Span {
        let epoch_ticks = clock::now_ticks();
        let collector = Arc::new(Collector {
            epoch_ticks,
            slots: (0..RECORD_SLOTS).map(|_| Slot::default()).collect(),
            overflow: Mutex::new(Vec::new()),
            next: AtomicU32::new(1),
        });
        Span {
            inner: Some(SpanInner {
                collector,
                index: 0,
                parent: None,
                name,
                thread: thread_ordinal(),
                start_ticks: epoch_ticks,
                start_ns: 0,
                finished: AtomicU64::new(0),
                has_extra: AtomicU32::new(0),
                extra: Mutex::new(Extra::default()),
            }),
            timed: None,
        }
    }

    /// Opens a child phase. May be called from any thread holding a
    /// reference to `self`; the child records the opening thread's
    /// ordinal, which is how WorkerPool attribution becomes visible.
    /// Opening takes no lock — the span claims an index and defers its
    /// record to close.
    pub fn child(&self, name: &'static str) -> Span {
        let Some(inner) = &self.inner else {
            return Span::disabled();
        };
        let collector = inner.collector.clone();
        let index = collector.next.fetch_add(1, Ordering::Relaxed);
        // One clock read: the span's offset in the trace is derived from
        // the shared epoch (the subtraction saturates to zero, so a
        // child can never start "before" its root).
        let start_ticks = clock::now_ticks();
        let start_ns = clock::ticks_to_ns(start_ticks.saturating_sub(collector.epoch_ticks));
        Span {
            inner: Some(SpanInner {
                collector,
                index,
                parent: Some(inner.index),
                name,
                thread: thread_ordinal(),
                start_ticks,
                start_ns,
                finished: AtomicU64::new(0),
                has_extra: AtomicU32::new(0),
                extra: Mutex::new(Extra::default()),
            }),
            timed: None,
        }
    }

    /// Records a point event (`"budget-bail"`, `"bfs-fallback"`, …) at
    /// the current offset.
    pub fn event(&self, text: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let at = inner.collector.now_ns();
        let mut extra = inner.extra.lock().unwrap_or_else(|e| e.into_inner());
        extra.events.push((at, text.into()));
        inner.has_extra.store(1, Ordering::Relaxed);
    }

    /// Attaches free-form detail shown in the dumped trace (overwrites
    /// earlier detail). Gate expensive string building with
    /// [`Span::is_enabled`].
    pub fn detail(&self, text: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let mut extra = inner.extra.lock().unwrap_or_else(|e| e.into_inner());
        extra.detail = text.into();
        inner.has_extra.store(1, Ordering::Relaxed);
    }

    /// Closes the span, recording its duration. Dropping an unfinished
    /// span closes it too; calling `finish` first just makes the close
    /// point explicit.
    pub fn finish(self) {
        // Drop runs the close.
    }

    fn close(&self) {
        let Some(inner) = &self.inner else { return };
        if inner.finished.swap(1, Ordering::Relaxed) != 0 {
            return;
        }
        let d = clock::ticks_to_ns(clock::now_ticks().saturating_sub(inner.start_ticks));
        let Extra { detail, events } = if inner.has_extra.load(Ordering::Relaxed) != 0 {
            std::mem::take(&mut *inner.extra.lock().unwrap_or_else(|e| e.into_inner()))
        } else {
            Extra::default()
        };
        let rec = SpanRecord {
            parent: inner.parent,
            name: inner.name,
            start_ns: inner.start_ns,
            duration_ns: d,
            thread: inner.thread,
            events,
            detail,
        };
        match inner.collector.slots.get(inner.index as usize) {
            Some(slot) => {
                // SAFETY: this span is the sole claimant of its index and
                // `finished` made this the one write; readers wait for
                // the `ready` publication.
                unsafe { *slot.rec.get() = Some(rec) };
                slot.ready.store(true, Ordering::Release);
            }
            None => {
                let mut ov = inner.collector.overflow.lock().unwrap_or_else(|e| e.into_inner());
                ov.push((inner.index, rec));
            }
        }
    }

    /// Consumes a **root** span and returns the finished trace. Returns
    /// `None` for disabled spans.
    pub(crate) fn into_trace(self, seq: u64) -> Option<BatchTrace> {
        self.close();
        let t = self.inner.as_ref()?;
        debug_assert_eq!(t.index, 0, "into_trace is for root spans");
        let (slots, overflow) = (&t.collector.slots, &t.collector.overflow);
        // Re-assemble in creation (index) order. A child still open when
        // the root finished has no record yet — it gets an `(open)`
        // placeholder, and its eventual close lands in a slot (or the
        // drained overflow) nobody reads again, harmlessly discarded
        // with the collector.
        let n = t.collector.next.load(Ordering::Relaxed) as usize;
        let mut spans: Vec<SpanRecord> = (0..n)
            .map(|_| SpanRecord {
                parent: None,
                name: "(open)",
                start_ns: 0,
                duration_ns: 0,
                thread: 0,
                events: Vec::new(),
                detail: String::new(),
            })
            .collect();
        for (i, slot) in slots.iter().enumerate().take(n) {
            if slot.ready.load(Ordering::Acquire) {
                // SAFETY: `ready` pairs with the closing span's Release
                // store, and a published slot is never written again.
                if let Some(rec) = unsafe { (*slot.rec.get()).take() } {
                    spans[i] = rec;
                }
            }
        }
        let overflowed = {
            let mut ov = overflow.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *ov)
        };
        for (i, rec) in overflowed {
            // A straggler-opened span may postdate the `next` load above;
            // its record has no placeholder and is dropped like any
            // other post-finish close.
            if let Some(s) = spans.get_mut(i as usize) {
                *s = rec;
            }
        }
        Some(BatchTrace { seq, total_ns: spans[0].duration_ns, spans })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// The finished trace of one batch: a flat, parent-indexed span table
/// (index 0 is the root) ordered by creation.
#[derive(Debug, Clone)]
pub struct BatchTrace {
    /// The batch's log sequence number.
    pub seq: u64,
    /// Root duration in nanoseconds.
    pub total_ns: u64,
    /// All spans; `spans[0]` is the root.
    pub spans: Vec<SpanRecord>,
}

impl BatchTrace {
    /// All spans named `name`.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Number of distinct thread ordinals among spans named `name` — the
    /// "did the pool actually split this?" question.
    pub fn distinct_threads_in(&self, name: &str) -> usize {
        let mut threads: Vec<u32> = self.spans_named(name).map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        threads.len()
    }

    /// The trace as an indented text tree (for terminals and examples).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(0, 0, &mut out);
        out
    }

    fn render_node(&self, index: usize, depth: usize, out: &mut String) {
        let s = &self.spans[index];
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{} [t{}] +{}s {}s",
            s.name,
            s.thread,
            format_seconds(s.start_ns),
            format_seconds(s.duration_ns),
        ));
        if !s.detail.is_empty() {
            out.push_str(&format!(" ({})", s.detail));
        }
        out.push('\n');
        for (at, ev) in &s.events {
            out.push_str(&format!("{indent}  ! +{}s {ev}\n", format_seconds(*at)));
        }
        for (i, child) in self.spans.iter().enumerate() {
            if child.parent == Some(index as u32) {
                self.render_node(i, depth + 1, out);
            }
        }
    }

    /// The trace as one JSON object (hand-rolled; the crate is
    /// std-only): `{"seq":…,"total_seconds":…,"spans":[{…}]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"total_seconds\":{},\"spans\":[",
            self.seq,
            format_seconds(self.total_ns)
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"parent\":{},\"thread\":{},\"start_seconds\":{},\
                 \"duration_seconds\":{}",
                json_string(s.name),
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                s.thread,
                format_seconds(s.start_ns),
                format_seconds(s.duration_ns),
            ));
            if !s.detail.is_empty() {
                out.push_str(&format!(",\"detail\":{}", json_string(&s.detail)));
            }
            if !s.events.is_empty() {
                out.push_str(",\"events\":[");
                for (j, (at, ev)) in s.events.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{}]", format_seconds(*at), json_string(ev)));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_nests_and_records_durations() {
        let root = Span::root("batch");
        {
            let a = root.child("apply");
            let _a1 = a.child("prepare");
            std::thread::sleep(std::time::Duration::from_millis(2));
            a.event("budget-bail");
            a.detail("pattern=0");
        }
        root.child("notify").finish();
        let trace = root.into_trace(7).expect("enabled root");
        assert_eq!(trace.seq, 7);
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.spans[0].name, "batch");
        assert_eq!(trace.spans[0].parent, None);
        let apply = trace.spans_named("apply").next().expect("apply span");
        assert_eq!(apply.parent, Some(0));
        assert!(apply.duration_ns >= 2_000_000, "sleep is visible");
        assert_eq!(apply.events.len(), 1);
        assert_eq!(apply.events[0].1, "budget-bail");
        assert_eq!(apply.detail, "pattern=0");
        let prep = trace.spans_named("prepare").next().expect("prepare span");
        assert_eq!(
            trace.spans.iter().position(|s| std::ptr::eq(s, apply)),
            prep.parent.map(|p| p as usize),
            "prepare nests under apply"
        );
        assert!(trace.total_ns >= apply.duration_ns);
        // Render and JSON both mention every phase.
        let text = trace.render();
        for n in ["batch", "apply", "prepare", "notify", "budget-bail"] {
            assert!(text.contains(n), "{n} in render");
        }
        let json = trace.to_json();
        assert!(json.contains("\"seq\":7"));
        assert!(json.contains("\"name\":\"prepare\""));
        assert!(json.contains("budget-bail"));
    }

    #[test]
    fn spans_opened_on_other_threads_record_their_ordinals() {
        let root = Span::root("batch");
        let here = thread_ordinal();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let root = &root;
                s.spawn(move || {
                    let c = root.child("extract");
                    c.detail("chunk");
                });
            }
        });
        let trace = root.into_trace(0).expect("enabled root");
        let threads: Vec<u32> = trace.spans_named("extract").map(|s| s.thread).collect();
        assert_eq!(threads.len(), 2);
        assert!(threads.iter().all(|&t| t != here), "workers, not the opener");
        assert_eq!(trace.distinct_threads_in("extract"), 2);
    }

    #[test]
    fn child_still_open_at_root_finish_becomes_a_placeholder() {
        let root = Span::root("batch");
        let straggler = root.child("extract");
        let trace = root.into_trace(9).expect("enabled root");
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].name, "(open)");
        // The straggler's eventual close lands in the drained collector
        // and must not panic or corrupt the finished trace.
        straggler.finish();
        assert_eq!(trace.spans[1].name, "(open)");
    }

    #[test]
    fn spans_past_slot_capacity_spill_to_overflow_and_still_trace() {
        let root = Span::root("batch");
        std::thread::scope(|s| {
            for _ in 0..2 {
                let root = &root;
                s.spawn(move || {
                    for _ in 0..RECORD_SLOTS {
                        root.child("extract").finish();
                    }
                });
            }
        });
        let trace = root.into_trace(5).expect("enabled root");
        assert_eq!(trace.spans.len(), 2 * RECORD_SLOTS + 1);
        assert_eq!(trace.spans_named("extract").count(), 2 * RECORD_SLOTS);
        assert!(trace.spans.iter().skip(1).all(|s| s.parent == Some(0)));
        assert!(trace.spans_named("(open)").next().is_none(), "every close was kept");
    }

    #[test]
    fn timed_root_measures_without_collecting() {
        let root = Span::timed_root("ingest");
        assert!(!root.is_enabled(), "children and events are no-ops");
        let c = root.child("refresh");
        assert!(!c.is_enabled());
        c.event("dropped");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let (name, ns) = root.timed_elapsed().expect("timed root");
        assert_eq!(name, "ingest");
        assert!(ns >= 1_000_000, "the sleep is visible: {ns}ns");
        assert!(root.into_trace(1).is_none(), "no span tree to assemble");
    }

    #[test]
    fn disabled_spans_are_free_and_produce_no_trace() {
        let s = Span::disabled();
        assert!(!s.is_enabled());
        let c = s.child("anything");
        assert!(!c.is_enabled());
        c.event("dropped");
        c.finish();
        assert!(s.into_trace(1).is_none());
    }
}
