//! [`FlightRecorder`]: a bounded ring of recent batch traces plus a
//! separate capture list for batches that crossed a latency threshold.
//!
//! The ring answers "what has the service been doing lately"; the slow
//! list answers "why was batch 4817 slow" hours later, after the ring
//! has long evicted it. Both are bounded, and the single slowest batch
//! ever seen is always retained, so a post-hoc dump has the worst case
//! in hand no matter how the thresholds were tuned.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::trace::BatchTrace;

/// Bounds and thresholds for a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Whether traces are collected at all. With the recorder off (and
    /// telemetry otherwise enabled) spans fold their durations straight
    /// into the phase histograms at close — no record collection, no
    /// per-batch trace, no retention — which is the cheapest way to keep
    /// latency histograms on a microbatch hot path.
    pub enabled: bool,
    /// How many recent batch traces the ring retains.
    pub ring_capacity: usize,
    /// How many over-threshold traces are retained (oldest evicted).
    pub slow_capacity: usize,
    /// Batches at or above this duration are captured in the slow list.
    pub slow_threshold: Duration,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            enabled: true,
            ring_capacity: 32,
            slow_capacity: 16,
            slow_threshold: Duration::from_millis(50),
        }
    }
}

impl RecorderConfig {
    /// Recorder off: histograms and counters keep recording, traces are
    /// never built or retained.
    pub fn disabled() -> Self {
        RecorderConfig { enabled: false, ..RecorderConfig::default() }
    }
}

#[derive(Debug, Default)]
struct RecorderState {
    ring: VecDeque<Arc<BatchTrace>>,
    slow: VecDeque<Arc<BatchTrace>>,
    slowest: Option<Arc<BatchTrace>>,
}

/// See the module docs. Recording happens once per batch (not on the
/// span hot path), so a plain mutex is fine here.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    /// An empty recorder with the given bounds.
    pub fn new(cfg: RecorderConfig) -> Self {
        FlightRecorder { cfg, state: Mutex::new(RecorderState::default()) }
    }

    /// The configured bounds.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    /// Whether this recorder retains traces (see [`RecorderConfig::enabled`]).
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stores one finished trace, returning the shared handle it is
    /// retained under.
    pub fn record(&self, trace: BatchTrace) -> Arc<BatchTrace> {
        let trace = Arc::new(trace);
        if !self.cfg.enabled {
            return trace;
        }
        let mut s = self.lock();
        if self.cfg.ring_capacity > 0 {
            if s.ring.len() == self.cfg.ring_capacity {
                s.ring.pop_front();
            }
            s.ring.push_back(trace.clone());
        }
        let threshold = self.cfg.slow_threshold.as_nanos().min(u64::MAX as u128) as u64;
        if self.cfg.slow_capacity > 0 && trace.total_ns >= threshold {
            if s.slow.len() == self.cfg.slow_capacity {
                s.slow.pop_front();
            }
            s.slow.push_back(trace.clone());
        }
        if s.slowest.as_ref().is_none_or(|t| trace.total_ns > t.total_ns) {
            s.slowest = Some(trace.clone());
        }
        trace
    }

    /// Stores a trace in the slow list / slowest slot only, skipping the
    /// ring — for the root-only skeleton traces synthesized from
    /// sampled-out batches that crossed the slow threshold. The ring
    /// stays a ring of *full* span trees; slow capture still never
    /// misses a batch, sampled or not.
    pub fn record_slow(&self, trace: BatchTrace) -> Arc<BatchTrace> {
        let trace = Arc::new(trace);
        if !self.cfg.enabled {
            return trace;
        }
        let mut s = self.lock();
        if self.cfg.slow_capacity > 0 {
            if s.slow.len() == self.cfg.slow_capacity {
                s.slow.pop_front();
            }
            s.slow.push_back(trace.clone());
        }
        if s.slowest.as_ref().is_none_or(|t| trace.total_ns > t.total_ns) {
            s.slowest = Some(trace.clone());
        }
        trace
    }

    /// The retained recent traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<BatchTrace>> {
        self.lock().ring.iter().cloned().collect()
    }

    /// The retained over-threshold traces, oldest first.
    pub fn slow(&self) -> Vec<Arc<BatchTrace>> {
        self.lock().slow.iter().cloned().collect()
    }

    /// The single slowest batch ever recorded.
    pub fn slowest(&self) -> Option<Arc<BatchTrace>> {
        self.lock().slowest.clone()
    }

    /// Everything the recorder holds as one JSON object:
    /// `{"recent":[…],"slow":[…],"slowest":…}`.
    pub fn to_json(&self) -> String {
        let (recent, slow, slowest) = {
            let s = self.lock();
            (
                s.ring.iter().cloned().collect::<Vec<_>>(),
                s.slow.iter().cloned().collect::<Vec<_>>(),
                s.slowest.clone(),
            )
        };
        let mut out = String::from("{\"recent\":[");
        for (i, t) in recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("],\"slow\":[");
        for (i, t) in slow.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("],\"slowest\":");
        match slowest {
            Some(t) => out.push_str(&t.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRecord;

    fn trace(seq: u64, total_ns: u64) -> BatchTrace {
        BatchTrace {
            seq,
            total_ns,
            spans: vec![SpanRecord {
                parent: None,
                name: "ingest",
                start_ns: 0,
                duration_ns: total_ns,
                thread: 0,
                events: Vec::new(),
                detail: String::new(),
            }],
        }
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let r = FlightRecorder::new(RecorderConfig {
            enabled: true,
            ring_capacity: 3,
            slow_capacity: 2,
            slow_threshold: Duration::from_secs(1),
        });
        for seq in 0..5 {
            r.record(trace(seq, 10));
        }
        let recent: Vec<u64> = r.recent().iter().map(|t| t.seq).collect();
        assert_eq!(recent, vec![2, 3, 4], "oldest two evicted");
        assert!(r.slow().is_empty(), "nothing crossed the threshold");
    }

    #[test]
    fn threshold_capture_outlives_ring_eviction() {
        let r = FlightRecorder::new(RecorderConfig {
            enabled: true,
            ring_capacity: 2,
            slow_capacity: 2,
            slow_threshold: Duration::from_micros(1),
        });
        r.record(trace(1, 5_000)); // 5 µs: slow
        for seq in 2..6 {
            r.record(trace(seq, 10)); // fast; pushes 1 out of the ring
        }
        assert!(r.recent().iter().all(|t| t.seq != 1), "evicted from ring");
        let slow: Vec<u64> = r.slow().iter().map(|t| t.seq).collect();
        assert_eq!(slow, vec![1], "still captured as slow");
        // The slow list is itself bounded.
        r.record(trace(7, 6_000));
        r.record(trace(8, 7_000));
        let slow: Vec<u64> = r.slow().iter().map(|t| t.seq).collect();
        assert_eq!(slow, vec![7, 8], "oldest slow trace evicted at capacity");
    }

    #[test]
    fn slowest_is_retained_forever() {
        let r = FlightRecorder::new(RecorderConfig {
            enabled: true,
            ring_capacity: 1,
            slow_capacity: 1,
            slow_threshold: Duration::from_secs(10),
        });
        r.record(trace(1, 9_000));
        for seq in 2..10 {
            r.record(trace(seq, 100));
        }
        assert_eq!(r.slowest().expect("recorded").seq, 1);
        r.record(trace(42, 10_000));
        assert_eq!(r.slowest().expect("recorded").seq, 42, "new maximum replaces it");
        let json = r.to_json();
        assert!(json.contains("\"slowest\":{\"seq\":42"));
    }
}
