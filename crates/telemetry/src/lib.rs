//! # gpm-telemetry
//!
//! Unified observability for the serving stack — offline and std-only,
//! in the spirit of `crates/compat/`: no network listener, no external
//! crates, just data structures the rest of the workspace threads
//! through its hot paths.
//!
//! Three pieces, one bundle:
//!
//! * **metrics** ([`MetricsRegistry`]) — named counters, gauges and
//!   fixed-bucket latency histograms, lock-free on the hot path via
//!   per-thread shards merged at snapshot, rendered as JSON or a
//!   Prometheus-style text exposition;
//! * **phase tracing** ([`Span`], [`BatchTrace`]) — a per-batch span
//!   tree with monotonic timestamps and thread ordinals, so WorkerPool
//!   parallelism is visible in the trace rather than inferred;
//! * **flight recorder** ([`FlightRecorder`]) — a bounded ring of
//!   recent batch traces plus captures of every batch that crossed a
//!   latency threshold, dumpable as JSON for post-hoc debugging.
//!
//! [`Telemetry`] is the cloneable handle the stack shares: the serving
//! layer opens a root span per ingested batch
//! ([`Telemetry::start_batch`]) and closes it with
//! [`Telemetry::finish_batch`], which derives the per-phase latency
//! histograms (`gpm_phase_seconds{phase="…"}`) and event counters
//! (`gpm_events_total{event="…"}`) from the finished span tree and
//! files the trace with the recorder. Counters and gauges record even
//! when telemetry is disabled — they are the single source of truth
//! behind the `*Stats` structs — while histograms and tracing honor the
//! enabled flag, keeping the disabled overhead to a couple of relaxed
//! atomic loads.

mod clock;
pub mod exposition;
mod metrics;
mod recorder;
mod trace;

pub use metrics::{
    bucket_index, bucket_le_ns, thread_ordinal, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, BUCKET_COUNT,
};
pub use recorder::{FlightRecorder, RecorderConfig};
pub use trace::{BatchTrace, Span, SpanRecord};

use std::sync::Arc;
use std::time::Duration;

/// The metric-name catalog: every name the stack emits, in one place,
/// so docs, tests and dashboards never chase string drift.
pub mod names {
    /// Histogram family: wall time of each traced phase, labeled
    /// `{phase="…"}`. Phases come from span names — see [`PHASES`].
    pub const PHASE_SECONDS: &str = "gpm_phase_seconds";
    /// Counter family: point events recorded on spans, labeled
    /// `{event="…"}` (budget fallbacks, rebuild decisions, …).
    pub const EVENTS_TOTAL: &str = "gpm_events_total";
    /// Histogram: latency of each fsynced [`DeltaLog`] save
    /// (append or wholesale), recorded by the serving layer.
    ///
    /// [`DeltaLog`]: ../gpm_serving/struct.DeltaLog.html
    pub const LOG_FSYNC_SECONDS: &str = "gpm_log_fsync_seconds";

    /// Span names the instrumented stack opens, root to leaf: batch
    /// ingest; registry delta apply (with its lockstep `replay` child);
    /// per-pattern phase-2a refresh; incremental condensation
    /// maintenance (`condense_incremental`, replacing `prepare` on
    /// maintained batches) vs. plan/DP-prepare (with `tarjan` +
    /// `bitsets` children) vs. extract (per chunk under phase-2b
    /// splits); subscription fan-out; log persistence.
    pub const PHASES: &[&str] = &[
        "ingest",
        "apply",
        "replay",
        "refresh",
        "condense_incremental",
        "bound_refold",
        "plan",
        "prepare",
        "tarjan",
        "bitsets",
        "extract",
        "notify",
        "log_save",
    ];

    // Registry counters/gauges (always on — they back `RegistryStats`).
    pub const REGISTRY_BATCHES: &str = "gpm_registry_batches_total";
    pub const REGISTRY_REGISTRATIONS: &str = "gpm_registry_registrations_total";
    pub const REGISTRY_DEREGISTRATIONS: &str = "gpm_registry_deregistrations_total";
    pub const REGISTRY_OPS_REPLAYED: &str = "gpm_registry_ops_replayed_total";
    pub const REGISTRY_OPS_SKIPPED: &str = "gpm_registry_ops_skipped_total";
    /// Phase-2b split *decisions* (deterministic; see ISSUE 6 satellite).
    pub const REGISTRY_INTRA_SPLITS: &str = "gpm_registry_intra_pattern_splits_total";
    /// Refreshes *observed* on ≥2 distinct worker threads (scheduling-
    /// dependent; kept separate from the decision counter on purpose).
    pub const REGISTRY_MULTI_WORKER: &str = "gpm_registry_observed_multi_worker_refreshes_total";
    pub const REGISTRY_LAST_TOUCHED: &str = "gpm_registry_last_patterns_touched";
    pub const REGISTRY_LAST_REBUILDS: &str = "gpm_registry_last_rebuilds";
    pub const REGISTRY_LAST_INTRA_SPLITS: &str = "gpm_registry_last_intra_splits";

    // Worker-pool occupancy (copied from the pool's own atomics once per
    // batch — gauges because they are point-in-time running totals).
    pub const POOL_BUSY_NANOS: &str = "gpm_pool_busy_nanos";
    pub const POOL_TASKS: &str = "gpm_pool_tasks";

    // Serving counters/gauges (always on — they back `ServiceStats`).
    pub const SERVING_BATCHES: &str = "gpm_serving_batches_total";
    pub const SERVING_UPDATES_PUSHED: &str = "gpm_serving_updates_pushed_total";
    pub const SERVING_UPDATES_COALESCED: &str = "gpm_serving_updates_coalesced_total";
    /// Updates evicted by newest-wins coalescing across all
    /// subscriptions (satellite: per-subscription counts live on
    /// `Subscription`).
    pub const SERVING_UPDATES_DROPPED: &str = "gpm_serving_updates_dropped_total";
    /// Diffs rebased onto a surviving queued update during coalescing.
    pub const SERVING_DIFFS_REBASED: &str = "gpm_serving_diffs_rebased_total";
    pub const SERVING_SUPPRESSED: &str = "gpm_serving_suppressed_total";
    pub const SERVING_INGEST_ERRORS: &str = "gpm_serving_ingest_errors_total";
    pub const SERVING_SUBSCRIPTIONS: &str = "gpm_serving_subscriptions";
    /// Deepest subscription queue observed during the last fan-out.
    pub const SERVING_MAX_QUEUE_DEPTH: &str = "gpm_serving_max_queue_depth";

    // Operator-plane additions (ISSUE 9).
    /// Bytes the delta log has durably written since process start
    /// (appends and wholesale rewrites both count what hit the file).
    pub const DELTA_LOG_BYTES: &str = "gpm_delta_log_bytes";
    /// Seconds since the log's last successful fsync — refreshed at
    /// snapshot/health time, so a stalled log shows up as a growing age.
    pub const DELTA_LOG_FSYNC_AGE: &str = "gpm_delta_log_fsync_age_seconds";
    /// Items of the current worker-pool job not yet completed, sampled
    /// at snapshot time (0 between jobs).
    pub const POOL_QUEUE_DEPTH: &str = "gpm_pool_queue_depth";
    /// Constant-1 gauge labeled `{version="…"}` — the standard
    /// build-identification idiom, joinable against any other series.
    pub const BUILD_INFO: &str = "gpm_build_info";
    /// Seconds since the serving process constructed its service.
    pub const UPTIME_SECONDS: &str = "gpm_uptime_seconds";
    /// Counter family `{pattern="…"}`: notify latencies within the
    /// pattern's SLO objective.
    pub const SLO_GOOD: &str = "gpm_slo_notify_good_total";
    /// Counter family `{pattern="…"}`: notify latencies over objective.
    pub const SLO_BAD: &str = "gpm_slo_notify_bad_total";
    /// Gauge family `{pattern="…"}`: rolling-window burn rate in
    /// permille of the error budget (1000 = burning exactly at budget).
    pub const SLO_BURN_RATE: &str = "gpm_slo_burn_rate_permille";
    /// Audit cycles the sampled production auditor has completed.
    pub const AUDIT_RUNS: &str = "gpm_audit_runs_total";
    /// Invariant violations the auditor has detected (latches health).
    pub const AUDIT_VIOLATIONS: &str = "gpm_audit_violations_total";

    // Maintained output bounds (ISSUE 10).
    /// Histogram: wall time of re-folding the maintained bound index
    /// over the components the condensation recomputed (one sample per
    /// batch that refolded).
    pub const BOUNDS_REFOLD_SECONDS: &str = "gpm_bounds_refold_seconds";
    /// Output matches whose relevant-set materialization was skipped
    /// because their maintained upper bound cannot displace the k-th
    /// answer.
    pub const BOUNDS_PRUNED: &str = "gpm_bounds_pruned_outputs_total";
    /// From-scratch rebuilds of the maintained bound index (churn-gate
    /// recounts, condensation fallbacks, width migrations). Attr-only
    /// and tombstone-only batches must never increment this.
    pub const BOUNDS_REBUILDS: &str = "gpm_bounds_rebuilds_total";

    /// `# HELP` text for a family base name — the catalog the text
    /// exposition renders from. Unknown names get a generic line so the
    /// exposition is always fully annotated.
    pub fn help(base: &str) -> &'static str {
        match base {
            PHASE_SECONDS => "Wall time of each traced phase, labeled by phase.",
            EVENTS_TOTAL => "Point events recorded on spans, labeled by event.",
            LOG_FSYNC_SECONDS => "Latency of each fsynced delta-log save.",
            REGISTRY_BATCHES => "Delta batches applied by the pattern registry.",
            REGISTRY_REGISTRATIONS => "Patterns registered.",
            REGISTRY_DEREGISTRATIONS => "Patterns deregistered.",
            REGISTRY_OPS_REPLAYED => "Effective ops replayed into per-pattern state.",
            REGISTRY_OPS_SKIPPED => "Effective ops skipped by the shared interest index.",
            REGISTRY_INTRA_SPLITS => "Phase-2b intra-pattern split decisions.",
            REGISTRY_MULTI_WORKER => "Refreshes observed on >=2 distinct worker threads.",
            REGISTRY_LAST_TOUCHED => "Patterns touched by the last batch.",
            REGISTRY_LAST_REBUILDS => "Patterns rebuilt by the last batch.",
            REGISTRY_LAST_INTRA_SPLITS => "Intra-pattern splits in the last batch.",
            POOL_BUSY_NANOS => "Cumulative busy nanoseconds across pool workers.",
            POOL_TASKS => "Tasks completed by the worker pool.",
            POOL_QUEUE_DEPTH => "Worker-pool items pending at snapshot time.",
            SERVING_BATCHES => "Batches ingested by the answer service.",
            SERVING_UPDATES_PUSHED => "Answer updates pushed to subscriptions.",
            SERVING_UPDATES_COALESCED => "Updates coalesced by bounded queues.",
            SERVING_UPDATES_DROPPED => "Updates evicted by newest-wins coalescing.",
            SERVING_DIFFS_REBASED => "Diffs rebased onto a surviving queued update.",
            SERVING_SUPPRESSED => "Unchanged answers suppressed (no push).",
            SERVING_INGEST_ERRORS => "Rejected delta batches.",
            SERVING_SUBSCRIPTIONS => "Live subscriptions.",
            SERVING_MAX_QUEUE_DEPTH => "Deepest subscription queue in the last fan-out.",
            DELTA_LOG_BYTES => "Bytes durably written to the delta log.",
            DELTA_LOG_FSYNC_AGE => "Seconds since the delta log last fsynced.",
            BUILD_INFO => "Constant 1, labeled with the build version.",
            UPTIME_SECONDS => "Seconds since the service started.",
            SLO_GOOD => "Notify latencies within the pattern's objective.",
            SLO_BAD => "Notify latencies over the pattern's objective.",
            SLO_BURN_RATE => "Rolling-window error-budget burn rate, permille.",
            AUDIT_RUNS => "Completed sampled-auditor cycles.",
            AUDIT_VIOLATIONS => "Invariant violations the auditor detected.",
            BOUNDS_REFOLD_SECONDS => "Wall time of maintained bound-index refolds.",
            BOUNDS_PRUNED => "Output materializations skipped by the maintained bound index.",
            BOUNDS_REBUILDS => "From-scratch rebuilds of the maintained bound index.",
            _ if base.ends_with("_max_seconds") => {
                "Exact maximum observed sample of the matching histogram, seconds."
            }
            _ => "diversified-topk metric (see gpm_telemetry::names).",
        }
    }

    /// The full labeled name of one phase histogram, e.g.
    /// `gpm_phase_seconds{phase="prepare"}` — the key used by
    /// [`MetricsSnapshot::histogram`](super::MetricsSnapshot::histogram).
    pub fn phase(name: &str) -> String {
        format!("{PHASE_SECONDS}{{phase=\"{name}\"}}")
    }

    /// The full labeled name of one event counter.
    pub fn event(name: &str) -> String {
        format!("{EVENTS_TOTAL}{{event=\"{name}\"}}")
    }

    /// Metric names every healthy serving process must expose with
    /// nonzero counts once it has ingested work — asserted by the
    /// acceptance test and the CI smoke step.
    pub fn mandatory_histograms() -> Vec<String> {
        vec![phase("ingest"), phase("refresh"), phase("notify"), LOG_FSYNC_SECONDS.to_string()]
    }
}

/// Bounds and switches for one [`Telemetry`] bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Gates histograms and tracing (counters/gauges always record).
    pub enabled: bool,
    /// Flight-recorder bounds.
    pub recorder: RecorderConfig,
    /// Deterministic trace sampling: batch roots collect a full span
    /// tree 1 in every `trace_sample` batches (batch 0, N, 2N, …); the
    /// rest get a timing-only root whose duration still lands in the
    /// root phase histogram, and which still produces a root-only
    /// skeleton capture in the recorder's slow list when it crosses the
    /// slow threshold — a slow batch is never invisible, sampled or
    /// not. `1` (the default) traces every batch; `0` is normalized to
    /// `1`. Production guidance: 16 keeps full tracing under the 2%
    /// overhead target on microbatch floods (see `BENCH_serving.json`).
    pub trace_sample: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { enabled: true, recorder: RecorderConfig::default(), trace_sample: 1 }
    }
}

impl TelemetryConfig {
    /// Telemetry off: counters still count, everything else is free.
    pub fn disabled() -> Self {
        TelemetryConfig { enabled: false, ..TelemetryConfig::default() }
    }

    /// Metrics on, span tracing off: with the recorder disabled there is
    /// no trace to collect, so spans skip the histogram fold and the
    /// record push **entirely** — batch roots and children become free
    /// no-ops. Counters, gauges and directly-recorded histograms (e.g.
    /// `gpm_log_fsync_seconds`) keep working. This is the configuration
    /// for sub-100µs microbatch hot paths where even per-span clock
    /// reads are measurable against the <2% overhead target.
    pub fn recorder_off(mut self) -> Self {
        self.recorder.enabled = false;
        self
    }

    /// Sets the slow-batch capture threshold.
    pub fn slow_threshold(mut self, t: Duration) -> Self {
        self.recorder.slow_threshold = t;
        self
    }

    /// Sets the recent-trace ring capacity.
    pub fn ring_capacity(mut self, n: usize) -> Self {
        self.recorder.ring_capacity = n;
        self
    }

    /// Full span trees for 1 in `n` batches (see
    /// [`TelemetryConfig::trace_sample`]).
    pub fn sampled(mut self, n: u32) -> Self {
        self.trace_sample = n.max(1);
        self
    }
}

struct TelemetryInner {
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
    /// 1-in-N trace sampling (normalized ≥ 1; see
    /// [`TelemetryConfig::trace_sample`]).
    trace_sample: u32,
    /// Root spans opened so far — the deterministic sampling phase.
    batches_started: std::sync::atomic::AtomicU64,
    /// Handles for the canonical per-phase histograms, resolved once at
    /// construction so [`Telemetry::finish_batch`] folds span durations
    /// into their histograms without per-span name formatting or map
    /// lookups (a measured multi-µs/batch cost at serving rates).
    /// Non-canonical span names fall back to
    /// [`MetricsRegistry::histogram_with`].
    phase_hists: Vec<(&'static str, Histogram)>,
}

/// The cloneable handle the stack shares: a metrics registry, a span
/// factory and a flight recorder behind one `Arc`. See the crate docs.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// A bundle with the given config.
    pub fn new(cfg: TelemetryConfig) -> Self {
        if cfg.enabled {
            // Calibrate the span clock now so the first traced batch
            // doesn't absorb the one-time cost.
            clock::warm_up();
        }
        let metrics = MetricsRegistry::new(cfg.enabled);
        // Probe order = rough per-batch frequency (per-pattern phases
        // first), so the linear `find` in `finish_batch` usually hits in
        // one or two steps.
        const HOT_ORDER: &[&str] = &[
            "refresh",
            "condense_incremental",
            "bound_refold",
            "plan",
            "prepare",
            "extract",
            "tarjan",
            "bitsets",
            "apply",
            "replay",
            "ingest",
            "notify",
            "log_save",
        ];
        debug_assert_eq!(
            {
                let mut a = HOT_ORDER.to_vec();
                a.sort_unstable();
                a
            },
            {
                let mut b = names::PHASES.to_vec();
                b.sort_unstable();
                b
            },
            "hot order covers exactly the canonical phases"
        );
        let phase_hists = HOT_ORDER
            .iter()
            .map(|&p| (p, metrics.histogram_with(names::PHASE_SECONDS, &[("phase", p)])))
            .collect();
        Telemetry {
            inner: Arc::new(TelemetryInner {
                metrics,
                recorder: FlightRecorder::new(cfg.recorder),
                trace_sample: cfg.trace_sample.max(1),
                batches_started: std::sync::atomic::AtomicU64::new(0),
                phase_hists,
            }),
        }
    }

    /// Tracing + histograms on, default bounds.
    pub fn on() -> Self {
        Telemetry::new(TelemetryConfig::default())
    }

    /// Tracing + histograms off; counters and gauges still record, so
    /// `*Stats` snapshots stay correct. This is the default for layers
    /// used standalone (e.g. a bare `PatternRegistry`).
    pub fn off() -> Self {
        Telemetry::new(TelemetryConfig::disabled())
    }

    /// Whether histograms and tracing record.
    pub fn enabled(&self) -> bool {
        self.inner.metrics.enabled()
    }

    /// Flips histograms and tracing at runtime (spans already open keep
    /// recording until finished; new batches observe the change).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.metrics.set_enabled(enabled);
    }

    /// The metric registry (resolve handles once, record forever).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Opens the root span of one batch (`"ingest"`), or a free no-op
    /// span when disabled.
    pub fn start_batch(&self) -> Span {
        self.root_span("ingest")
    }

    /// Opens a root span with an explicit name — for layers that trace
    /// outside a serving batch (a standalone `PatternRegistry::apply`
    /// roots at `"apply"`).
    pub fn root_span(&self, name: &'static str) -> Span {
        // Recorder off ⇒ no trace will ever be wanted, so spans skip the
        // collector and the deferred histogram fold entirely — the whole
        // batch of opens/closes degrades to free no-ops.
        if !(self.enabled() && self.inner.recorder.is_enabled()) {
            return Span::disabled();
        }
        let n = self.inner.trace_sample;
        if n > 1 {
            use std::sync::atomic::Ordering;
            let i = self.inner.batches_started.fetch_add(1, Ordering::Relaxed);
            if !i.is_multiple_of(n as u64) {
                // Sampled out: a timing-only root — children are free
                // no-ops, the root latency still reaches its histogram
                // and the slow-batch skeleton capture in finish_batch.
                return Span::timed_root(name);
            }
        }
        Span::root(name)
    }

    /// Closes a batch: finishes the root span, folds every span's
    /// duration into `gpm_phase_seconds{phase=<name>}` and every span
    /// event into `gpm_events_total{event=…}`, and files the trace with
    /// the flight recorder. Returns the retained trace (`None` when
    /// disabled and when the recorder is off — spans then never recorded
    /// anything to fold). A sampled-out batch (timing-only root, see
    /// [`TelemetryConfig::trace_sample`]) folds only its root duration;
    /// if that crossed the slow threshold, a root-only skeleton trace is
    /// filed in the recorder's slow list (not the ring) and returned.
    pub fn finish_batch(&self, root: Span, seq: u64) -> Option<Arc<BatchTrace>> {
        if let Some((name, duration_ns)) = root.timed_elapsed() {
            match self.inner.phase_hists.iter().find(|(n, _)| *n == name) {
                Some((_, h)) => h.record_ns(duration_ns),
                None => self
                    .inner
                    .metrics
                    .histogram_with(names::PHASE_SECONDS, &[("phase", name)])
                    .record_ns(duration_ns),
            }
            let threshold = self.inner.recorder.config().slow_threshold;
            if Duration::from_nanos(duration_ns) >= threshold {
                let skeleton = BatchTrace {
                    seq,
                    total_ns: duration_ns,
                    spans: vec![SpanRecord {
                        parent: None,
                        name,
                        start_ns: 0,
                        duration_ns,
                        thread: thread_ordinal(),
                        events: Vec::new(),
                        detail: "sampled-out skeleton".to_string(),
                    }],
                };
                return Some(self.inner.recorder.record_slow(skeleton));
            }
            return None;
        }
        let trace = root.into_trace(seq)?;
        for span in &trace.spans {
            match self.inner.phase_hists.iter().find(|(n, _)| *n == span.name) {
                Some((_, h)) => h.record_ns(span.duration_ns),
                None => self
                    .inner
                    .metrics
                    .histogram_with(names::PHASE_SECONDS, &[("phase", span.name)])
                    .record_ns(span.duration_ns),
            }
            for (_, ev) in &span.events {
                self.inner.metrics.counter_with(names::EVENTS_TOTAL, &[("event", ev)]).inc();
            }
        }
        Some(self.inner.recorder.record(trace))
    }

    /// Prometheus-style text exposition of every metric.
    pub fn render(&self) -> String {
        self.inner.metrics.render()
    }

    /// One JSON object holding the metrics snapshot and the flight
    /// recorder contents:
    /// `{"metrics":…,"flight_recorder":…}` — the payload
    /// `AnswerService::with()` dumps.
    pub fn dump_json(&self) -> String {
        format!(
            "{{\"metrics\":{},\"flight_recorder\":{}}}",
            self.inner.metrics.to_json(),
            self.inner.recorder.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_batch_derives_phase_histograms_and_event_counters() {
        let t = Telemetry::on();
        let root = t.start_batch();
        {
            let apply = root.child("apply");
            let prep = apply.child("prepare");
            prep.event("budget-bail-early");
        }
        root.child("notify").finish();
        let trace = t.finish_batch(root, 3).expect("enabled");
        assert_eq!(trace.seq, 3);
        let snap = t.metrics().snapshot();
        for phase in ["ingest", "apply", "prepare", "notify"] {
            let h = snap.histogram(&names::phase(phase));
            assert_eq!(h.map(|h| h.count), Some(1), "one sample for {phase}");
        }
        assert_eq!(snap.counter(&names::event("budget-bail-early")), Some(1));
        assert_eq!(t.recorder().recent().len(), 1);
        // The combined dump carries both halves.
        let dump = t.dump_json();
        assert!(dump.contains("\"metrics\":{"));
        assert!(dump.contains("\"flight_recorder\":{"));
        assert!(dump.contains("\"recent\":["));
    }

    #[test]
    fn disabled_bundle_skips_tracing_but_not_counters() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        let root = t.start_batch();
        assert!(!root.is_enabled());
        assert!(t.finish_batch(root, 1).is_none());
        assert!(t.recorder().recent().is_empty());
        let c = t.metrics().counter(names::SERVING_BATCHES);
        c.inc();
        assert_eq!(c.get(), 1, "counters record regardless");
        // Runtime flip turns tracing on for the next batch.
        t.set_enabled(true);
        let root = t.start_batch();
        assert!(root.is_enabled());
        assert!(t.finish_batch(root, 2).is_some());
    }

    #[test]
    fn recorder_off_spans_are_free_noops_but_metrics_still_record() {
        let t = Telemetry::new(TelemetryConfig::default().recorder_off());
        assert!(t.enabled());
        assert!(!t.recorder().is_enabled());
        let root = t.start_batch();
        assert!(!root.is_enabled(), "spans skip the fold and push entirely");
        {
            let refresh = root.child("refresh");
            refresh.event("budget-bail-early");
        }
        assert!(t.finish_batch(root, 1).is_none(), "no trace is built");
        assert!(t.recorder().recent().is_empty());
        assert!(t.recorder().slowest().is_none());
        let snap = t.metrics().snapshot();
        for phase in ["ingest", "refresh"] {
            let h = snap.histogram(&names::phase(phase));
            assert_eq!(h.map(|h| h.count), Some(0), "{phase} records nothing via spans");
        }
        // Counters and directly-recorded histograms keep working — the
        // mode only turns the span machinery off.
        t.metrics().counter(names::SERVING_BATCHES).inc();
        t.metrics().histogram(names::LOG_FSYNC_SECONDS).record_ns(42);
        let snap = t.metrics().snapshot();
        assert_eq!(snap.counter(names::SERVING_BATCHES), Some(1));
        assert_eq!(snap.histogram(names::LOG_FSYNC_SECONDS).map(|h| h.count), Some(1));
    }

    #[test]
    fn trace_sampling_keeps_histograms_and_slow_capture() {
        let t = Telemetry::new(
            TelemetryConfig::default().sampled(4).slow_threshold(Duration::from_millis(1)),
        );
        let r0 = t.start_batch();
        assert!(r0.is_enabled(), "batch 0 collects a full tree");
        t.finish_batch(r0, 0);
        for seq in 1..4u64 {
            let r = t.start_batch();
            assert!(!r.is_enabled(), "batch {seq} is sampled out");
            if seq == 2 {
                std::thread::sleep(Duration::from_millis(2));
            }
            let rec = t.finish_batch(r, seq);
            assert_eq!(rec.is_some(), seq == 2, "only the slow batch files a skeleton");
        }
        let r4 = t.start_batch();
        assert!(r4.is_enabled(), "1-in-4: batch 4 collects again");
        t.finish_batch(r4, 4);
        let recent: Vec<u64> = t.recorder().recent().iter().map(|tr| tr.seq).collect();
        assert_eq!(recent, vec![0, 4], "the ring holds only fully traced batches");
        let slow = t.recorder().slow();
        assert_eq!(slow.len(), 1, "the slow sampled-out batch was still captured");
        assert_eq!(slow[0].seq, 2);
        assert_eq!(slow[0].spans.len(), 1, "root-only skeleton");
        assert_eq!(slow[0].spans[0].detail, "sampled-out skeleton");
        let snap = t.metrics().snapshot();
        assert_eq!(
            snap.histogram(&names::phase("ingest")).map(|h| h.count),
            Some(5),
            "every batch's root latency reached the histogram"
        );
    }

    /// Not an assertion — a microbench for the per-span open/close cost
    /// in each mode, run by hand when tuning the hot path:
    /// `cargo test --release -p gpm-telemetry -- --ignored --nocapture span_cost`.
    #[test]
    #[ignore = "manual microbench"]
    fn span_cost_microbench() {
        for (label, t) in [
            ("full tracing", Telemetry::on()),
            ("recorder off", Telemetry::new(TelemetryConfig::default().recorder_off())),
            ("disabled", Telemetry::off()),
        ] {
            const BATCHES: usize = 20_000;
            const CHILDREN: usize = 16;
            let t0 = std::time::Instant::now();
            for seq in 0..BATCHES {
                let root = t.start_batch();
                for _ in 0..CHILDREN {
                    root.child("refresh").finish();
                }
                t.finish_batch(root, seq as u64);
            }
            let per_span = t0.elapsed().as_nanos() as f64 / (BATCHES * (CHILDREN + 1)) as f64;
            println!("{label:>15}: {per_span:6.1} ns/span");
        }
    }

    #[test]
    fn mandatory_names_are_well_formed() {
        let m = names::mandatory_histograms();
        assert!(m.contains(&"gpm_phase_seconds{phase=\"ingest\"}".to_string()));
        assert!(m.contains(&names::LOG_FSYNC_SECONDS.to_string()));
        assert!(names::PHASES.contains(&"tarjan"));
    }
}
