//! A strict mini-parser for the Prometheus text exposition format
//! (0.0.4) — the validation half of [`MetricsSnapshot::render`]'s
//! contract.
//!
//! This is **not** a general scrape client: it accepts exactly the
//! subset the registry emits (plus optional timestamps) and errors on
//! everything else, so tests and the CI smoke scrape catch format
//! regressions instead of shipping them to a real scraper. Checks:
//!
//! * every sample belongs to a family announced by a preceding
//!   `# TYPE` line (at most one per family, `# HELP` allowed before);
//! * family blocks are contiguous — a family never reopens after
//!   another family's lines began;
//! * metric and label names are legal, label values unescape cleanly,
//!   values parse as floats (`+Inf`/`-Inf`/`NaN` included);
//! * no duplicate `(name, labels)` sample;
//! * counter samples are finite and non-negative;
//! * histogram families carry, per label set: cumulative
//!   non-decreasing `_bucket` series ending in `le="+Inf"`, and
//!   `_sum`/`_count` with `_count` equal to the `+Inf` bucket.
//!
//! [`MetricsSnapshot::render`]: crate::MetricsSnapshot::render

use std::collections::BTreeMap;

/// The declared type of one metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
    Summary,
    Untyped,
}

impl FamilyKind {
    fn parse(s: &str) -> Option<FamilyKind> {
        Some(match s {
            "counter" => FamilyKind::Counter,
            "gauge" => FamilyKind::Gauge,
            "histogram" => FamilyKind::Histogram,
            "summary" => FamilyKind::Summary,
            "untyped" => FamilyKind::Untyped,
            _ => return None,
        })
    }
}

/// One parsed sample line.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The sample's metric name (for histograms this carries the
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// One parsed metric family: a `# TYPE` declaration plus its samples.
#[derive(Debug, Clone)]
pub struct Family {
    /// Base metric name.
    pub name: String,
    /// Declared type.
    pub kind: FamilyKind,
    /// `# HELP` text, unescaped, when present.
    pub help: Option<String>,
    /// All samples of the family, in source order.
    pub samples: Vec<Sample>,
}

impl Family {
    /// The first sample whose labels contain every pair in `want`
    /// (`want` empty ⇒ the first sample).
    pub fn sample_with(&self, want: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| want.iter().all(|(k, v)| s.label(k) == Some(*v)))
    }
}

/// The family named `name` in a parse result.
pub fn family<'a>(families: &'a [Family], name: &str) -> Option<&'a Family> {
    families.iter().find(|f| f.name == name)
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn unescape(s: &str, line_no: usize, quotes: bool) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('"') if quotes => out.push('"'),
            other => {
                return Err(format!(
                    "line {line_no}: bad escape \\{}",
                    other.map(String::from).unwrap_or_default()
                ))
            }
        }
    }
    Ok(out)
}

fn parse_value(s: &str, line_no: usize) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| format!("line {line_no}: bad value {s:?}")),
    }
}

/// Splits `name{labels} value [timestamp]` into parts, unescaping label
/// values.
fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(i) => {
            let close =
                line.rfind('}').ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
            if close < i {
                return Err(format!("line {line_no}: unterminated label set"));
            }
            (&line[..i], {
                let labels = &line[i + 1..close];
                let tail = line[close + 1..].trim_start();
                (Some(labels), tail)
            })
        }
        None => {
            let mut it = line.splitn(2, [' ', '\t']);
            let name = it.next().unwrap();
            (name, (None, it.next().unwrap_or("").trim_start()))
        }
    };
    let (labels_src, tail) = rest;
    if !is_name(name_part) {
        return Err(format!("line {line_no}: bad metric name {name_part:?}"));
    }
    let mut labels = Vec::new();
    if let Some(src) = labels_src {
        let mut rest = src;
        while !rest.is_empty() {
            let eq = rest.find('=').ok_or_else(|| format!("line {line_no}: label without '='"))?;
            let key = &rest[..eq];
            if !is_label_name(key) {
                return Err(format!("line {line_no}: bad label name {key:?}"));
            }
            let after = &rest[eq + 1..];
            if !after.starts_with('"') {
                return Err(format!("line {line_no}: unquoted label value for {key}"));
            }
            // Find the closing quote, skipping escaped characters.
            let mut end = None;
            let mut esc = false;
            for (i, c) in after[1..].char_indices() {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end =
                end.ok_or_else(|| format!("line {line_no}: unterminated label value for {key}"))?;
            let raw = &after[1..1 + end];
            labels.push((key.to_string(), unescape(raw, line_no, true)?));
            rest = &after[end + 2..];
            if let Some(stripped) = rest.strip_prefix(',') {
                rest = stripped;
            } else if !rest.is_empty() {
                return Err(format!("line {line_no}: junk after label value: {rest:?}"));
            }
        }
    }
    let mut fields = tail.split_ascii_whitespace();
    let value_src =
        fields.next().ok_or_else(|| format!("line {line_no}: sample without a value"))?;
    let value = parse_value(value_src, line_no)?;
    if let Some(ts) = fields.next() {
        // Optional timestamp: must at least be an integer.
        ts.parse::<i64>().map_err(|_| format!("line {line_no}: bad timestamp {ts:?}"))?;
    }
    if fields.next().is_some() {
        return Err(format!("line {line_no}: trailing junk on sample line"));
    }
    Ok(Sample { name: name_part.to_string(), labels, value })
}

/// Base family name a sample of `kind` belongs to, or an error when the
/// sample name is not legal inside that family.
fn family_base<'a>(name: &'a str, fam: &str, kind: FamilyKind) -> Result<&'a str, String> {
    match kind {
        FamilyKind::Histogram => {
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(base) = name.strip_suffix(suffix) {
                    if base == fam {
                        return Ok(base);
                    }
                }
            }
            Err(format!("sample {name} is not a _bucket/_sum/_count of histogram {fam}"))
        }
        FamilyKind::Summary => {
            for suffix in ["_sum", "_count", ""] {
                if let Some(base) = name.strip_suffix(suffix) {
                    if base == fam {
                        return Ok(base);
                    }
                }
            }
            Err(format!("sample {name} does not belong to summary {fam}"))
        }
        _ => {
            if name == fam {
                Ok(name)
            } else {
                Err(format!("sample {name} does not belong to {kind:?} family {fam}"))
            }
        }
    }
}

/// Per-labelset histogram accumulation for the structural checks.
#[derive(Default)]
struct HistCheck {
    buckets: Vec<(f64, f64)>, // (le, cumulative count) in source order
    sum: Option<f64>,
    count: Option<f64>,
}

fn non_le_key(s: &Sample) -> String {
    let mut parts: Vec<String> =
        s.labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v:?}")).collect();
    parts.sort();
    parts.join(",")
}

fn check_histogram(fam: &Family) -> Result<(), String> {
    let mut per: BTreeMap<String, HistCheck> = BTreeMap::new();
    for s in &fam.samples {
        let entry = per.entry(non_le_key(s)).or_default();
        if s.name.ends_with("_bucket") {
            let le = s
                .label("le")
                .ok_or_else(|| format!("histogram {}: _bucket without le", fam.name))?;
            let le =
                parse_value(le, 0).map_err(|_| format!("histogram {}: bad le {le:?}", fam.name))?;
            entry.buckets.push((le, s.value));
        } else if s.name.ends_with("_sum") {
            if entry.sum.replace(s.value).is_some() {
                return Err(format!("histogram {}: duplicate _sum", fam.name));
            }
        } else if s.name.ends_with("_count") && entry.count.replace(s.value).is_some() {
            return Err(format!("histogram {}: duplicate _count", fam.name));
        }
    }
    for (labels, h) in per {
        let n = &fam.name;
        if h.buckets.is_empty() {
            return Err(format!("histogram {n}{{{labels}}}: no _bucket series"));
        }
        for w in h.buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("histogram {n}{{{labels}}}: le bounds not increasing"));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("histogram {n}{{{labels}}}: bucket counts not cumulative"));
            }
        }
        let (last_le, last_count) = *h.buckets.last().unwrap();
        if last_le != f64::INFINITY {
            return Err(format!("histogram {n}{{{labels}}}: missing le=\"+Inf\" bucket"));
        }
        let count = h.count.ok_or_else(|| format!("histogram {n}{{{labels}}}: missing _count"))?;
        if h.sum.is_none() {
            return Err(format!("histogram {n}{{{labels}}}: missing _sum"));
        }
        if count != last_count {
            return Err(format!(
                "histogram {n}{{{labels}}}: _count {count} != +Inf bucket {last_count}"
            ));
        }
    }
    Ok(())
}

/// Parses and validates one exposition document. See the module docs for
/// the strictness contract; any violation is an `Err` naming the line.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut closed: Vec<String> = Vec::new(); // families that may not reopen
    let mut pending_help: Option<(String, String)> = None;
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .map(|(n, h)| (n, h.to_string()))
                .unwrap_or((rest, String::new()));
            if !is_name(name) {
                return Err(format!("line {line_no}: bad HELP metric name {name:?}"));
            }
            if families.iter().any(|f| f.name == name) || closed.contains(&name.to_string()) {
                return Err(format!("line {line_no}: HELP for already-declared family {name}"));
            }
            if let Some((prev, _)) = &pending_help {
                return Err(format!(
                    "line {line_no}: HELP {name} while HELP {prev} awaits its TYPE"
                ));
            }
            pending_help = Some((name.to_string(), unescape(&help, line_no, false)?));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_ascii_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if it.next().is_some() {
                return Err(format!("line {line_no}: trailing junk on TYPE line"));
            }
            if !is_name(name) {
                return Err(format!("line {line_no}: bad TYPE metric name {name:?}"));
            }
            let kind = FamilyKind::parse(kind)
                .ok_or_else(|| format!("line {line_no}: unknown metric type {kind:?}"))?;
            if families.iter().any(|f| f.name == name) || closed.contains(&name.to_string()) {
                return Err(format!("line {line_no}: duplicate TYPE for family {name}"));
            }
            let help = match pending_help.take() {
                Some((hn, h)) if hn == name => Some(h),
                Some((hn, _)) => {
                    return Err(format!("line {line_no}: HELP {hn} not followed by TYPE {hn}"))
                }
                None => None,
            };
            if let Some(last) = families.last() {
                closed.push(last.name.clone());
            }
            families.push(Family { name: name.to_string(), kind, help, samples: Vec::new() });
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {line_no}: unexpected comment {line:?}"));
        }
        if let Some((hn, _)) = &pending_help {
            return Err(format!("line {line_no}: HELP {hn} not followed by its TYPE"));
        }
        let sample = parse_sample(line, line_no)?;
        let fam = families
            .last_mut()
            .ok_or_else(|| format!("line {line_no}: sample {} before any TYPE", sample.name))?;
        family_base(&sample.name, &fam.name, fam.kind)
            .map_err(|e| format!("line {line_no}: {e}"))?;
        let identity = format!("{}|{:?}", sample.name, sample.labels);
        if !seen.insert(identity) {
            return Err(format!("line {line_no}: duplicate sample {}", sample.name));
        }
        if fam.kind == FamilyKind::Counter && (sample.value < 0.0 || sample.value.is_nan()) {
            return Err(format!("line {line_no}: counter {} is negative or NaN", sample.name));
        }
        fam.samples.push(sample);
    }
    if let Some((hn, _)) = pending_help {
        return Err(format!("HELP {hn} at end of input without a TYPE"));
    }
    for fam in &families {
        if fam.kind == FamilyKind::Histogram {
            check_histogram(fam)?;
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_wellformed_document() {
        let text = "# HELP gpm_ops_total How many ops.\n\
                    # TYPE gpm_ops_total counter\n\
                    gpm_ops_total 3\n\
                    gpm_ops_total{kind=\"a b\"} 1\n\
                    # HELP gpm_lat_seconds Latency.\n\
                    # TYPE gpm_lat_seconds histogram\n\
                    gpm_lat_seconds_bucket{le=\"0.1\"} 2\n\
                    gpm_lat_seconds_bucket{le=\"+Inf\"} 3\n\
                    gpm_lat_seconds_sum 0.25\n\
                    gpm_lat_seconds_count 3\n";
        let fams = parse(text).expect("valid");
        assert_eq!(fams.len(), 2);
        let ops = family(&fams, "gpm_ops_total").unwrap();
        assert_eq!(ops.kind, FamilyKind::Counter);
        assert_eq!(ops.help.as_deref(), Some("How many ops."));
        assert_eq!(ops.sample_with(&[]).unwrap().value, 3.0);
        assert_eq!(ops.sample_with(&[("kind", "a b")]).unwrap().value, 1.0);
        let lat = family(&fams, "gpm_lat_seconds").unwrap();
        assert_eq!(lat.kind, FamilyKind::Histogram);
        assert_eq!(lat.samples.len(), 4);
    }

    #[test]
    fn unescapes_label_values() {
        let text = "# TYPE t counter\nt{v=\"a\\\\b\\\"c\\nd\"} 1\n";
        let fams = parse(text).expect("valid");
        assert_eq!(fams[0].samples[0].label("v"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn rejects_untyped_samples_and_reopened_families() {
        assert!(parse("loose_metric 1\n").unwrap_err().contains("before any TYPE"));
        let reopened = "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# TYPE a counter\na 2\n";
        assert!(parse(reopened).unwrap_err().contains("duplicate TYPE"));
        let interleaved = "# TYPE a counter\na 1\n# TYPE b counter\na{x=\"1\"} 1\n";
        assert!(parse(interleaved).unwrap_err().contains("does not belong"));
    }

    #[test]
    fn rejects_structural_histogram_violations() {
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse(no_inf).unwrap_err().contains("+Inf"));
        let not_cumulative = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n\
                              h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(parse(not_cumulative).unwrap_err().contains("cumulative"));
        let count_mismatch = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(parse(count_mismatch).unwrap_err().contains("_count"));
        let no_sum = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n";
        assert!(parse(no_sum).unwrap_err().contains("_sum"));
    }

    #[test]
    fn rejects_bad_names_values_and_duplicates() {
        assert!(parse("# TYPE 2bad counter\n").is_err());
        assert!(parse("# TYPE t counter\nt nope\n").is_err());
        assert!(parse("# TYPE t counter\nt -1\n").unwrap_err().contains("negative"));
        assert!(parse("# TYPE t counter\nt 1\nt 2\n").unwrap_err().contains("duplicate sample"));
        assert!(parse("# TYPE t counter\nt{9bad=\"v\"} 1\n").is_err());
        assert!(parse("# TYPE t counter\nt{k=\"v\\q\"} 1\n").is_err());
        assert!(parse("# TYPE t gauge\nt 1 2 3\n").unwrap_err().contains("trailing junk"));
    }

    #[test]
    fn accepts_inf_nan_gauges_and_timestamps() {
        let fams = parse("# TYPE t gauge\nt +Inf\n").expect("inf gauge");
        assert_eq!(fams[0].samples[0].value, f64::INFINITY);
        let fams = parse("# TYPE t gauge\nt 1.5 1700000000000\n").expect("timestamped");
        assert_eq!(fams[0].samples[0].value, 1.5);
    }

    #[test]
    fn live_registry_render_passes_the_parser() {
        let r = crate::MetricsRegistry::new(true);
        r.counter("gpm_ops_total").inc();
        r.counter_with("gpm_events_total", &[("event", "cond-churn-drop")]).inc();
        r.gauge("gpm_depth").set(-2);
        r.histogram_with("gpm_phase_seconds", &[("phase", "prepare")]).record_ns(5_000);
        r.histogram("gpm_log_fsync_seconds").record_ns(1 << 20);
        let fams = parse(&r.render()).expect("render is strictly parseable");
        assert!(family(&fams, "gpm_phase_seconds").is_some());
        assert!(family(&fams, "gpm_phase_seconds_max_seconds").is_some());
    }
}
