//! The span clock: RDTSC fast path with an [`Instant`] fallback.
//!
//! Phase tracing reads the clock twice per span (open + close). Through
//! `Instant::now` that is ~20–50 ns per read depending on how the
//! kernel exposes `clock_gettime`, and at serving batch rates the clock
//! becomes the single largest telemetry cost. On x86_64 the invariant
//! TSC is a ~5–10 ns register read; ticks are converted to nanoseconds
//! with a once-per-process calibration against the real clock
//! (fixed-point, `ns·2³² / tick`). Span timestamps only ever feed
//! *relative* durations inside one batch trace, so sub-percent
//! calibration error shifts reported latencies slightly and affects
//! nothing else. Other architectures keep `Instant` (ticks *are*
//! nanoseconds there and conversion is the identity).

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    /// `ns per tick × 2³²`, calibrated once per process over a ~200 µs
    /// window (error well under 1%). TSC rates of 1–5 GHz put the scale
    /// near 2³⁰–2³²; the u128 multiply in [`ticks_to_ns`] has headroom
    /// for spans years long.
    fn scale() -> u64 {
        static SCALE: OnceLock<u64> = OnceLock::new();
        *SCALE.get_or_init(|| {
            let t0 = Instant::now();
            let c0 = now_ticks();
            let ns = loop {
                let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                if ns >= 200_000 {
                    break ns;
                }
                std::hint::spin_loop();
            };
            let dc = now_ticks().saturating_sub(c0).max(1);
            (((ns as u128) << 32) / dc as u128).max(1) as u64
        })
    }

    pub fn now_ticks() -> u64 {
        // SAFETY: RDTSC is unprivileged and side-effect-free; baseline
        // on every x86_64 target Rust supports.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    pub fn ticks_to_ns(dt: u64) -> u64 {
        (((dt as u128) * scale() as u128) >> 32).min(u64::MAX as u128) as u64
    }

    pub fn init() {
        let _ = scale();
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    pub fn now_ticks() -> u64 {
        epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    pub fn ticks_to_ns(dt: u64) -> u64 {
        dt
    }

    pub fn init() {
        let _ = epoch();
    }
}

pub(crate) use imp::{now_ticks, ticks_to_ns};

/// Pays the one-time calibration (x86_64) / epoch pin (fallback) up
/// front so the first traced batch doesn't absorb it.
pub(crate) fn warm_up() {
    imp::init();
}

/// Smoke check that the calibrated clock tracks wall time: used by unit
/// tests, and cheap enough to assert the scale is sane anywhere.
#[cfg(test)]
pub(crate) fn measure(d: std::time::Duration) -> u64 {
    let c0 = now_ticks();
    let t0 = std::time::Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
    ticks_to_ns(now_ticks().saturating_sub(c0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn calibrated_clock_tracks_wall_time_within_ten_percent() {
        warm_up();
        let ns = measure(Duration::from_millis(5));
        assert!((4_500_000..=5_600_000).contains(&ns), "5ms measured as {ns}ns — calibration off");
    }
}
