//! [`MetricsRegistry`]: named counters, gauges and fixed-bucket latency
//! histograms with a lock-free hot path.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved **once**
//! by name and stored by the instrumented layer; recording is then a
//! couple of relaxed atomic operations on a per-thread shard — no lock,
//! no allocation, no syscall. Shards are merged only at snapshot time
//! ([`MetricsRegistry::snapshot`]), which feeds both the JSON form and
//! the Prometheus-style text exposition ([`MetricsRegistry::render`]).
//!
//! Two rules keep the semantics predictable across the stack:
//!
//! * **counters and gauges always count**, even on a disabled registry —
//!   they are the single source of truth behind the `*Stats` structs
//!   (`RegistryStats`, `ServiceStats`), which must keep working whether
//!   or not anyone looks at telemetry;
//! * **histograms honor the enabled flag** — latency measurement is the
//!   part that costs clock reads on hot paths, so
//!   [`MetricsRegistry::set_enabled`]`(false)` turns it (and, at the
//!   [`Telemetry`](crate::Telemetry) level, tracing) off wholesale.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of per-thread shards counters and histograms spread writes
/// across (threads hash onto shards by a stable per-thread ordinal).
const SHARDS: usize = 8;

/// Histogram bucket upper bounds: powers of two in nanoseconds, from
/// `2^10` ns (~1 µs) doubling up to `2^37` ns (~137 s), plus a +Inf
/// overflow bucket — 29 buckets total, fixed for every histogram so
/// snapshots from different processes line up.
pub const BUCKET_COUNT: usize = 29;
const FIRST_BUCKET_LOG2: u32 = 10;

/// The inclusive upper bound of bucket `i` in nanoseconds (`u64::MAX`
/// for the overflow bucket).
pub fn bucket_le_ns(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        1u64 << (FIRST_BUCKET_LOG2 + i as u32)
    }
}

/// The bucket a sample of `ns` nanoseconds lands in.
pub fn bucket_index(ns: u64) -> usize {
    if ns <= (1 << FIRST_BUCKET_LOG2) {
        return 0;
    }
    // ceil(log2(ns)) for ns ≥ 2: position of the highest set bit of ns-1,
    // plus one.
    let ceil_log2 = 64 - (ns - 1).leading_zeros();
    ((ceil_log2 - FIRST_BUCKET_LOG2) as usize).min(BUCKET_COUNT - 1)
}

static NEXT_ORDINAL: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static ORDINAL: u32 = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id assigned to each thread on first telemetry use —
/// distinct per live thread, stable for the thread's lifetime. Traces
/// record it so a span tree shows *which* pool worker ran each phase.
pub fn thread_ordinal() -> u32 {
    ORDINAL.with(|o| *o)
}

fn shard() -> usize {
    thread_ordinal() as usize % SHARDS
}

/// One cache-line-ish padded atomic cell, so shards of one metric do not
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

#[derive(Default)]
struct CounterInner {
    shards: [PaddedU64; SHARDS],
}

/// A monotonically increasing counter. Cloning shares the underlying
/// cells; increments from any thread, merged at read.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    fn new() -> Self {
        Counter { inner: Arc::new(CounterInner::default()) }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.shards[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The merged value.
    pub fn get(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A last-write-wins signed gauge (queue depths, per-batch "last_*"
/// values, occupancy permilles).
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge { inner: Arc::new(AtomicI64::new(0)) }
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adds to the value (negative deltas allowed).
    pub fn add(&self, d: i64) {
        self.inner.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is higher (high-watermarks).
    pub fn set_max(&self, v: i64) {
        self.inner.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

// No separate sample counter: the total is the sum of the bucket
// counts, computed at snapshot time — one fewer RMW per record on the
// span-close hot path.
struct HistShard {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

#[repr(align(64))]
#[derive(Default)]
struct PaddedHistShard(HistShard);

struct HistogramInner {
    shards: [PaddedHistShard; SHARDS],
    enabled: Arc<AtomicBool>,
}

/// A fixed-bucket latency histogram (see [`bucket_le_ns`] for the
/// boundaries). Recording is shard-local and lock-free; quantiles are
/// estimated at snapshot time as the bucket upper bound clamped to the
/// exact observed maximum. Disabled registries drop samples.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                shards: std::array::from_fn(|_| PaddedHistShard::default()),
                enabled,
            }),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one sample in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let s = &self.inner.shards[shard()].0;
        s.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        s.sum_ns.fetch_add(ns, Ordering::Relaxed);
        s.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Merged samples so far (the sum of all bucket counts).
    pub fn count(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum::<u64>())
            .sum()
    }

    /// Whether samples currently record (the registry's shared flag).
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The merged snapshot (bucket counts + count/sum/max).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out =
            HistogramSnapshot { buckets: [0; BUCKET_COUNT], count: 0, sum_ns: 0, max_ns: 0 };
        for s in &self.inner.shards {
            let s = &s.0;
            for (o, b) in out.buckets.iter_mut().zip(&s.buckets) {
                *o += b.load(Ordering::Relaxed);
            }
            out.sum_ns += s.sum_ns.load(Ordering::Relaxed);
            out.max_ns = out.max_ns.max(s.max_ns.load(Ordering::Relaxed));
        }
        out.count = out.buckets.iter().sum();
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish_non_exhaustive()
    }
}

/// A merged, point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (boundaries from [`bucket_le_ns`]).
    pub buckets: [u64; BUCKET_COUNT],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Exact maximum sample in nanoseconds.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Estimated quantile in nanoseconds: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q · count)`, clamped
    /// to the exact observed maximum (so an estimate never exceeds a
    /// sample that was actually seen). 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_le_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// p50 in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// p90 in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// p99 in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A metric's identity: base name plus optional `{key="value"}` labels.
/// [`MetricKey::full_name`] is the canonical string form used as the map
/// key, in JSON snapshots and (reshaped) in the text exposition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    fn full_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }

    /// Label set with one extra pair appended — how histogram `_bucket`
    /// lines get their `le` label next to the metric's own labels. Label
    /// *values* are escaped per the Prometheus exposition format (`\\`,
    /// `\"`, `\n`); the internal [`Self::full_name`] identity stays raw.
    fn labels_with(&self, extra: Option<(&str, String)>) -> String {
        let mut parts: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{}\"", escape_label_value(&v)));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// Prometheus exposition escaping for label values: backslash, double
/// quote and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus exposition escaping for `# HELP` text: backslash and
/// newline (quotes stay raw there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The registry of named metrics. One per [`Telemetry`](crate::Telemetry)
/// instance; every layer of the stack resolves its handles here so there
/// is exactly one source of truth per process for each counter.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, (MetricKey, Metric)>>,
}

impl MetricsRegistry {
    /// An empty registry; `enabled` gates histogram recording (counters
    /// and gauges always record — see the module docs).
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(enabled)),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether histogram recording (and, at the bundle level, tracing) is
    /// on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips histogram recording at runtime. Already-resolved handles
    /// observe the change (they share the flag).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, (MetricKey, Metric)>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created on first use. Resolving the same
    /// name twice returns handles over the same cells; resolving a name
    /// already registered as a different metric type panics (a
    /// programming error, not an operational condition).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// As [`Self::counter`] with `{key="value"}` labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut m = self.lock();
        match m.entry(key.full_name()).or_insert_with(|| (key, Metric::Counter(Counter::new()))) {
            (_, Metric::Counter(c)) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// As [`Self::gauge`] with `{key="value"}` labels (per-pattern SLO
    /// burn rates, `gpm_build_info{version="…"}`).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut m = self.lock();
        match m.entry(key.full_name()).or_insert_with(|| (key, Metric::Gauge(Gauge::new()))) {
            (_, Metric::Gauge(g)) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// As [`Self::histogram`] with `{key="value"}` labels (the per-phase
    /// latency family `gpm_phase_seconds{phase="…"}`).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut m = self.lock();
        match m
            .entry(key.full_name())
            .or_insert_with(|| (key, Metric::Histogram(Histogram::new(self.enabled.clone()))))
        {
            (_, Metric::Histogram(h)) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// A merged, point-in-time view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (full, (key, metric)) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((full.clone(), key.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((full.clone(), key.clone(), g.get())),
                Metric::Histogram(h) => {
                    snap.histograms.push((full.clone(), key.clone(), h.snapshot()))
                }
            }
        }
        snap
    }

    /// Prometheus-style text exposition of [`Self::snapshot`] — no
    /// network dependency, callers decide where the bytes go.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }

    /// JSON object of [`Self::snapshot`] (hand-rolled: this crate is
    /// std-only).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// The merged values of every metric at one instant.
#[derive(Default)]
pub struct MetricsSnapshot {
    /// `(full name, key, value)`, sorted by full name.
    counters: Vec<(String, MetricKey, u64)>,
    /// `(full name, key, value)`, sorted by full name.
    gauges: Vec<(String, MetricKey, i64)>,
    /// `(full name, key, merged histogram)`, sorted by full name.
    histograms: Vec<(String, MetricKey, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The merged histogram under `full_name` (label form included, e.g.
    /// `gpm_phase_seconds{phase="prepare"}`).
    pub fn histogram(&self, full_name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _, _)| n == full_name).map(|(_, _, h)| h)
    }

    /// The merged value of counter `full_name`.
    pub fn counter(&self, full_name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _, _)| n == full_name).map(|&(_, _, v)| v)
    }

    /// The value of gauge `full_name`.
    pub fn gauge(&self, full_name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _, _)| n == full_name).map(|&(_, _, v)| v)
    }

    /// Every counter as `(full name, value)`.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, _, v)| (n.as_str(), *v))
    }

    /// Every gauge as `(full name, value)`.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(n, _, v)| (n.as_str(), *v))
    }

    /// Every histogram as `(full name, snapshot)`.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(n, _, h)| (n.as_str(), h))
    }

    /// Prometheus text exposition (format 0.0.4): metrics grouped into
    /// families by base name, each family announced by one `# HELP` +
    /// `# TYPE` pair, label values escaped, histograms as cumulative
    /// `_bucket{le=…}` series (with `+Inf`) plus `_sum` / `_count`. A
    /// histogram's exact observed maximum — which the native format has
    /// no slot for — is exposed as a sibling gauge family
    /// `<base>_max_seconds`. Validated by
    /// [`exposition::parse`](crate::exposition::parse) in tests and the
    /// CI smoke scrape.
    pub fn render(&self) -> String {
        // Family body text keyed by base name; BTreeMap keeps families
        // contiguous even when an unlabeled sample of one family would
        // otherwise sort between another family's labeled samples.
        let mut fams: BTreeMap<String, (&'static str, String)> = BTreeMap::new();
        for (_, key, v) in &self.counters {
            let (_, body) =
                fams.entry(key.name.clone()).or_insert_with(|| ("counter", String::new()));
            body.push_str(&format!("{}{} {v}\n", key.name, key.labels_with(None)));
        }
        for (_, key, v) in &self.gauges {
            let (_, body) =
                fams.entry(key.name.clone()).or_insert_with(|| ("gauge", String::new()));
            body.push_str(&format!("{}{} {v}\n", key.name, key.labels_with(None)));
        }
        for (_, key, h) in &self.histograms {
            let base = &key.name;
            let (_, body) =
                fams.entry(base.clone()).or_insert_with(|| ("histogram", String::new()));
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cum += b;
                let le = if i + 1 == BUCKET_COUNT {
                    "+Inf".to_string()
                } else {
                    format_seconds(bucket_le_ns(i))
                };
                let labels = key.labels_with(Some(("le", le)));
                body.push_str(&format!("{base}_bucket{labels} {cum}\n"));
            }
            let labels = key.labels_with(None);
            body.push_str(&format!("{base}_sum{labels} {}\n", format_seconds(h.sum_ns)));
            body.push_str(&format!("{base}_count{labels} {}\n", h.count));
            let (_, max_body) = fams
                .entry(format!("{base}_max_seconds"))
                .or_insert_with(|| ("gauge", String::new()));
            max_body
                .push_str(&format!("{base}_max_seconds{labels} {}\n", format_seconds(h.max_ns)));
        }
        let mut out = String::new();
        for (base, (kind, body)) in &fams {
            out.push_str(&format!(
                "# HELP {base} {}\n# TYPE {base} {kind}\n",
                escape_help(crate::names::help(base))
            ));
            out.push_str(body);
        }
        out
    }

    /// The snapshot as one JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum_seconds,
    /// max_seconds,p50_seconds,p90_seconds,p99_seconds,buckets:[[le,n],…]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_pairs(&mut out, self.counters.iter().map(|(n, _, v)| (n.clone(), v.to_string())));
        out.push_str("},\"gauges\":{");
        push_pairs(&mut out, self.gauges.iter().map(|(n, _, v)| (n.clone(), v.to_string())));
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, _, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum_seconds\":{},\"max_seconds\":{},\
                 \"p50_seconds\":{},\"p90_seconds\":{},\"p99_seconds\":{},\"buckets\":[",
                json_string(name),
                h.count,
                format_seconds(h.sum_ns),
                format_seconds(h.max_ns),
                format_seconds(h.p50_ns()),
                format_seconds(h.p90_ns()),
                format_seconds(h.p99_ns()),
            ));
            let mut bfirst = true;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue; // sparse: most of the 29 buckets are empty
                }
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                let le = if i + 1 == BUCKET_COUNT {
                    "\"+Inf\"".to_string()
                } else {
                    format_seconds(bucket_le_ns(i))
                };
                out.push_str(&format!("[{le},{b}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn push_pairs(out: &mut String, pairs: impl Iterator<Item = (String, String)>) {
    let mut first = true;
    for (k, v) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&json_string(&k));
        out.push(':');
        out.push_str(&v);
    }
}

/// Nanoseconds rendered as decimal seconds without float formatting
/// surprises (exact: ns / 1e9 printed with 9 fractional digits, trailing
/// zeros trimmed).
pub(crate) fn format_seconds(ns: u64) -> String {
    let secs = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        return format!("{secs}");
    }
    let mut s = format!("{secs}.{frac:09}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

/// Minimal JSON string escaping (metric and span names are plain
/// identifiers, but details/events may carry arbitrary text).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // ≤ 1024 ns is bucket 0; each boundary is inclusive; one past a
        // boundary moves up a bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1024), 0);
        assert_eq!(bucket_index(1025), 1);
        assert_eq!(bucket_index(2048), 1);
        assert_eq!(bucket_index(2049), 2);
        for i in 0..BUCKET_COUNT - 1 {
            let le = bucket_le_ns(i);
            assert_eq!(bucket_index(le), i, "le of bucket {i} lands in it");
            assert_eq!(bucket_index(le + 1), (i + 1).min(BUCKET_COUNT - 1));
        }
        // Far past the last finite boundary: overflow bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_le_ns(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn percentiles_clamp_to_observed_max() {
        let r = MetricsRegistry::new(true);
        let h = r.histogram("t_seconds");
        // A single 5 µs sample: its bucket's upper bound is 8.192 µs, but
        // the estimate must not exceed the exact max.
        h.record_ns(5_000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 5_000);
        assert_eq!(s.p50_ns(), 5_000);
        assert_eq!(s.p99_ns(), 5_000);
        assert_eq!(s.mean_ns(), 5_000);
    }

    #[test]
    fn percentile_math_over_known_distribution() {
        let r = MetricsRegistry::new(true);
        let h = r.histogram("t_seconds");
        // 90 samples at ~2 µs (bucket le 2048), 10 at ~1 ms (bucket le
        // 2^20 ns = 1.048576 ms).
        for _ in 0..90 {
            h.record_ns(2_000);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns(), 2_048);
        assert_eq!(s.p90_ns(), 2_048); // rank 90 is still in the 2 µs bucket
                                       // Their bucket's upper bound is 2^20 ns = 1.048576 ms, but the
                                       // estimate clamps to the exact observed maximum.
        assert_eq!(s.quantile_ns(0.91), 1_000_000);
        assert_eq!(s.p99_ns(), 1_000_000);
        assert_eq!(s.max_ns, 1_000_000);
        // Empty histograms report zeros.
        let empty = r.histogram("t2_seconds").snapshot();
        assert_eq!(empty.p50_ns(), 0);
        assert_eq!(empty.mean_ns(), 0);
    }

    #[test]
    fn counters_count_even_when_disabled_histograms_do_not() {
        let r = MetricsRegistry::new(false);
        let c = r.counter("ops_total");
        let h = r.histogram("lat_seconds");
        c.add(3);
        h.record(Duration::from_micros(10));
        assert_eq!(c.get(), 3, "counters are the stats source of truth");
        assert_eq!(h.count(), 0, "disabled registries drop samples");
        r.set_enabled(true);
        h.record(Duration::from_micros(10));
        assert_eq!(h.count(), 1, "already-resolved handles observe enable");
    }

    #[test]
    fn sharded_writes_merge_across_threads() {
        let r = MetricsRegistry::new(true);
        let c = r.counter("ops_total");
        let h = r.histogram("lat_seconds");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.record_ns(1_500);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets[1], 4000); // 1.5 µs: bucket le 2048 ns
    }

    #[test]
    fn same_name_resolves_same_cells_and_labels_are_distinct() {
        let r = MetricsRegistry::new(true);
        r.counter("a_total").inc();
        r.counter("a_total").inc();
        assert_eq!(r.counter("a_total").get(), 2);
        let l1 = r.counter_with("b_total", &[("phase", "prepare")]);
        let l2 = r.counter_with("b_total", &[("phase", "extract")]);
        l1.add(5);
        l2.add(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("b_total{phase=\"prepare\"}"), Some(5));
        assert_eq!(snap.counter("b_total{phase=\"extract\"}"), Some(7));
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let r = MetricsRegistry::new(true);
        r.counter("gpm_ops_total").add(2);
        r.gauge("gpm_depth").set(-3);
        let h = r.histogram_with("gpm_phase_seconds", &[("phase", "prepare")]);
        h.record_ns(2_000);
        let text = r.render();
        assert!(text.contains("# TYPE gpm_ops_total counter\ngpm_ops_total 2\n"));
        assert!(text.contains("# TYPE gpm_depth gauge\ngpm_depth -3\n"));
        assert!(text.contains("# TYPE gpm_phase_seconds histogram"));
        assert!(text.contains("gpm_phase_seconds_bucket{phase=\"prepare\",le=\"0.000002048\"} 1"));
        assert!(text.contains("gpm_phase_seconds_bucket{phase=\"prepare\",le=\"+Inf\"} 1"));
        assert!(text.contains("gpm_phase_seconds_count{phase=\"prepare\"} 1"));
        // Cumulative: every later bucket also reports 1.
        assert!(text.contains("gpm_phase_seconds_sum{phase=\"prepare\"} 0.000002"));
        // JSON form carries the same numbers.
        let json = r.to_json();
        assert!(json.contains("\"gpm_ops_total\":2"));
        assert!(json.contains("\"gpm_phase_seconds{phase=\\\"prepare\\\"}\""));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn render_groups_families_and_declares_them_once() {
        let r = MetricsRegistry::new(true);
        r.counter_with("gpm_events_total", &[("event", "a")]).inc();
        r.counter_with("gpm_events_total", &[("event", "b")]).add(2);
        // A name that would sort *between* the family's unlabeled and
        // labeled spellings if render walked raw full names.
        r.counter("gpm_events_total").inc();
        r.counter("gpm_events_totalx_total").inc();
        let text = r.render();
        assert_eq!(text.matches("# TYPE gpm_events_total counter").count(), 1);
        assert_eq!(text.matches("# HELP gpm_events_total ").count(), 1);
        let fam_start = text.find("# TYPE gpm_events_total counter").unwrap();
        let fam = &text[fam_start..];
        let fam_end = fam[1..].find('#').map(|i| i + 1).unwrap_or(fam.len());
        let fam = &fam[..fam_end];
        for line in [
            "gpm_events_total 1\n",
            "gpm_events_total{event=\"a\"} 1\n",
            "gpm_events_total{event=\"b\"} 2\n",
        ] {
            assert!(fam.contains(line), "{line:?} inside the contiguous family block");
        }
        // Every TYPE is preceded by a HELP for the same family.
        for (i, line) in text.lines().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let base = rest.split(' ').next().unwrap();
                let prev = text.lines().nth(i - 1).unwrap();
                assert!(
                    prev.starts_with(&format!("# HELP {base} ")),
                    "HELP precedes TYPE for {base}"
                );
            }
        }
    }

    #[test]
    fn render_escapes_label_values() {
        let r = MetricsRegistry::new(true);
        r.counter_with("gpm_events_total", &[("event", "say \"hi\"\\now\n!")]).inc();
        let text = r.render();
        assert!(
            text.contains("gpm_events_total{event=\"say \\\"hi\\\"\\\\now\\n!\"} 1\n"),
            "escaped label value in: {text}"
        );
    }

    #[test]
    fn histogram_max_is_its_own_gauge_family() {
        let r = MetricsRegistry::new(true);
        r.histogram_with("gpm_phase_seconds", &[("phase", "plan")]).record_ns(2_000);
        let text = r.render();
        assert!(text.contains("# TYPE gpm_phase_seconds histogram"));
        assert!(text.contains("# TYPE gpm_phase_seconds_max_seconds gauge"));
        assert!(text.contains("gpm_phase_seconds_max_seconds{phase=\"plan\"} 0.000002\n"));
    }

    #[test]
    fn format_seconds_is_exact() {
        assert_eq!(format_seconds(0), "0");
        assert_eq!(format_seconds(1_000_000_000), "1");
        assert_eq!(format_seconds(1_500_000_000), "1.5");
        assert_eq!(format_seconds(2_048), "0.000002048");
        assert_eq!(format_seconds(1), "0.000000001");
    }
}
