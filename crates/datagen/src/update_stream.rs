//! Update-stream generation for dynamic-graph workloads.
//!
//! Produces sequences of [`GraphDelta`] batches against a base graph,
//! mirroring how the target domain (social networks) actually changes:
//! mostly edge churn with preferential attachment on insertions, a
//! sprinkle of node arrivals/departures, and — when [`attr_churn`] is
//! raised — attribute mutations (a video's `views` climbing, a product's
//! `sales_rank` moving) mixed in with the structural ops. Streams are
//! generated against a [`DynGraph`] mirror advanced op by op, so every
//! emitted op is effective against the state the ops before it produce
//! (deletions target edges that exist, insertions never duplicate,
//! removals target live nodes, attr sets actually change the stored
//! value) — batch sizes mean what they say.
//!
//! [`attr_churn`]: UpdateStreamConfig::attr_churn

use gpm_graph::dynamic::DynGraph;
use gpm_graph::{AttrValue, DiGraph, GraphDelta, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The attribute-key alphabet update streams draw from: key `i` is
/// `attr{i}`. Pattern generators that want attr-churn streams to exercise
/// their predicates should build conditions over the same keys.
pub fn attr_key(i: u32) -> String {
    format!("attr{i}")
}

/// Parameters of an update stream.
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Number of delta batches.
    pub batches: usize,
    /// Operations per batch (the "delta size" the scaling bench sweeps).
    pub batch_size: usize,
    /// Fraction of operations that are insertions (the rest delete).
    pub insert_fraction: f64,
    /// Fraction of operations that touch nodes instead of edges.
    pub node_churn: f64,
    /// Fraction of operations that are attribute mutations
    /// (`SetAttr`/`UnsetAttr` on live nodes) instead of structural ops.
    /// `0.0` (the default) draws no extra randomness, so structural-only
    /// streams are bit-identical to what they were before attribute
    /// support existed.
    pub attr_churn: f64,
    /// Attribute-key alphabet size (keys [`attr_key`]`(0..attr_keys)`).
    pub attr_keys: u32,
    /// Integer attribute values are drawn from `0..attr_values` (a small
    /// fraction of sets store a short string instead, exercising the
    /// cross-variant comparison rules).
    pub attr_values: i64,
    /// Label alphabet for inserted nodes.
    pub labels: u32,
    /// RNG seed.
    pub seed: u64,
}

impl UpdateStreamConfig {
    /// A balanced stream: `batches` batches of `batch_size` ops, 60%
    /// insertions, 10% node churn, no attribute churn.
    pub fn new(batches: usize, batch_size: usize, seed: u64) -> Self {
        UpdateStreamConfig {
            batches,
            batch_size,
            insert_fraction: 0.6,
            node_churn: 0.1,
            attr_churn: 0.0,
            attr_keys: 3,
            attr_values: 8,
            labels: 15,
            seed,
        }
    }

    /// Insert-only variant (graph only grows).
    pub fn insert_only(mut self) -> Self {
        self.insert_fraction = 1.0;
        self
    }

    /// Delete-only variant (graph only shrinks).
    pub fn delete_only(mut self) -> Self {
        self.insert_fraction = 0.0;
        self
    }

    /// Variant with `frac` of the ops mutating attributes.
    pub fn with_attr_churn(mut self, frac: f64) -> Self {
        self.attr_churn = frac;
        self
    }
}

/// Generates `cfg.batches` consecutive deltas for `base`. Applying them in
/// order through [`DynGraph::apply`] (or a `DynamicMatcher`) is guaranteed
/// to succeed; each delta is built against the graph state its
/// predecessors produce.
pub fn update_stream(base: &DiGraph, cfg: &UpdateStreamConfig) -> Vec<GraphDelta> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut mirror = DynGraph::from_digraph(base);
    // Endpoint pool for degree-proportional insertion targets (the same
    // linkage-model trick the synthetic generator uses).
    let mut pool: Vec<NodeId> = base.edges().flat_map(|e| [e.source, e.target]).collect();

    let mut out = Vec::with_capacity(cfg.batches);
    for _ in 0..cfg.batches {
        let mut delta = GraphDelta::new();
        for _ in 0..cfg.batch_size {
            // Retry the slot until an op lands that is *effective against
            // the intra-batch state* (no self-loops, duplicate edges,
            // tombstoned endpoints, double-deletes), so the realized batch
            // size stays the configured one — the delta-scaling bench
            // labels its data points with it. Each landed op is applied to
            // the mirror immediately, keeping later slots' sampling (and
            // AddNode id assignment) in lockstep. Bounded probes: a slot
            // that cannot land anything (e.g. delete-only on an edgeless
            // graph) is dropped rather than spun on.
            'slot: for _ in 0..16 {
                // Gated draw: with attr_churn == 0.0 no randomness is
                // consumed here, keeping structural-only streams
                // bit-identical to the pre-attribute generator.
                let attr_op = cfg.attr_churn > 0.0 && rng.random::<f64>() < cfg.attr_churn;
                let insert = rng.random::<f64>() < cfg.insert_fraction;
                let node_op = rng.random::<f64>() < cfg.node_churn;
                let n = mirror.node_count() as u32;
                let op = if attr_op {
                    let v = rng.random_range(0..n);
                    if mirror.is_removed(v) {
                        None
                    } else {
                        let key = attr_key(rng.random_range(0..cfg.attr_keys.max(1)));
                        if rng.random::<f64>() < 0.25 {
                            // Unset an attribute that is actually present.
                            mirror
                                .attributes(v)
                                .contains_key(&key)
                                .then(|| GraphDelta::new().unset_attr(v, key.clone()))
                        } else {
                            // Set to a value that differs from the stored
                            // one (else the op would be filtered as a
                            // no-op); mostly ints, a sprinkle of strings.
                            let value = if rng.random_range(0..8u32) == 0 {
                                AttrValue::from(format!("s{}", rng.random_range(0..3u32)))
                            } else {
                                AttrValue::Int(rng.random_range(0..cfg.attr_values.max(1)))
                            };
                            (mirror.attr(v, &key) != Some(&value))
                                .then(|| GraphDelta::new().set_attr(v, key.clone(), value))
                        }
                    }
                } else if insert && node_op {
                    Some(GraphDelta::new().add_node(rng.random_range(0..cfg.labels.max(1))))
                } else if insert {
                    // Degree-biased target, uniform source (new links attach
                    // to popular nodes).
                    let s = rng.random_range(0..n);
                    let t = if pool.is_empty() || rng.random::<f64>() < 0.3 {
                        rng.random_range(0..n)
                    } else {
                        pool[rng.random_range(0..pool.len())]
                    };
                    if s != t
                        && !mirror.is_removed(s)
                        && !mirror.is_removed(t)
                        && !mirror.has_edge(s, t)
                    {
                        pool.push(s);
                        pool.push(t);
                        Some(GraphDelta::new().add_edge(s, t))
                    } else {
                        None
                    }
                } else if node_op {
                    let v = rng.random_range(0..n);
                    (!mirror.is_removed(v)).then(|| GraphDelta::new().remove_node(v))
                } else {
                    // Delete a real edge: sample a source with out-degree.
                    let s = rng.random_range(0..n);
                    let deg = mirror.out_degree(s);
                    (deg > 0).then(|| {
                        let k = rng.random_range(0..deg);
                        let t = mirror.successors(s).nth(k).unwrap();
                        GraphDelta::new().remove_edge(s, t)
                    })
                };
                if let Some(op) = op {
                    mirror.apply(&op).expect("generated ops are valid");
                    delta.ops.extend(op.ops);
                    break 'slot;
                }
            }
        }
        out.push(delta);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{synthetic_graph, SyntheticConfig};
    use gpm_graph::apply_delta;

    fn base() -> DiGraph {
        synthetic_graph(&SyntheticConfig::paper(300, 900, 11))
    }

    #[test]
    fn streams_apply_cleanly_and_deterministically() {
        let g = base();
        let cfg = UpdateStreamConfig::new(6, 20, 42);
        let stream = update_stream(&g, &cfg);
        assert_eq!(stream.len(), 6);
        let again = update_stream(&g, &cfg);
        for (a, b) in stream.iter().zip(&again) {
            assert_eq!(a.ops, b.ops, "same seed, same stream");
        }
        // Both application paths accept every batch.
        let mut dynamic = DynGraph::from_digraph(&g);
        let mut immutable = g.clone();
        let mut churn = 0;
        for delta in &stream {
            churn += dynamic.apply(delta).unwrap().edge_churn();
            immutable = apply_delta(&immutable, delta).unwrap();
        }
        assert!(churn > 0, "stream does something");
        assert_eq!(dynamic.edge_count(), immutable.edge_count());
        assert_eq!(dynamic.node_count(), immutable.node_count());
    }

    #[test]
    fn attr_streams_are_effective_and_deterministic() {
        use gpm_graph::DeltaOp;
        let g = base();
        let cfg = UpdateStreamConfig::new(5, 25, 99).with_attr_churn(0.5);
        let stream = update_stream(&g, &cfg);
        let again = update_stream(&g, &cfg);
        for (a, b) in stream.iter().zip(&again) {
            assert_eq!(a.ops, b.ops, "same seed, same stream");
        }
        let attr_ops: usize = stream
            .iter()
            .flat_map(|d| &d.ops)
            .filter(|op| matches!(op, DeltaOp::SetAttr { .. } | DeltaOp::UnsetAttr { .. }))
            .count();
        assert!(attr_ops > 0, "attr churn emits attr ops");
        let structural: usize = stream.iter().map(|d| d.len()).sum::<usize>() - attr_ops;
        assert!(structural > 0, "attr churn < 1.0 keeps structural ops mixed in");

        // Every emitted op is effective: replay records exactly as many
        // attr changes as attr ops, and both application paths agree.
        let mut dynamic = DynGraph::from_digraph(&g);
        let mut immutable = g.clone();
        let mut changes = 0;
        for delta in &stream {
            changes += dynamic.apply(delta).unwrap().attr_changes.len();
            immutable = apply_delta(&immutable, delta).unwrap();
        }
        assert_eq!(changes, attr_ops, "no emitted attr op is a no-op");
        let snap = dynamic.snapshot();
        for v in immutable.nodes() {
            assert_eq!(snap.attributes(v), immutable.attributes(v), "node {v}");
        }
    }

    #[test]
    fn zero_attr_churn_streams_are_unchanged() {
        // The gated draw keeps structural-only streams bit-identical to
        // the pre-attribute generator: with attr_churn == 0.0 the attr
        // branch consumes NO randomness, so every downstream draw lands
        // where it always did. Guarded two ways: no attr op is ever
        // emitted, and a golden op-sequence pinned from the pre-attribute
        // generator must reproduce exactly — an unconditional rng draw in
        // the attr branch would shift every op and fail this loudly.
        use gpm_graph::DeltaOp;
        let g = base();
        let stream = update_stream(&g, &UpdateStreamConfig::new(4, 15, 7));
        assert!(stream
            .iter()
            .flat_map(|d| &d.ops)
            .all(|op| !matches!(op, DeltaOp::SetAttr { .. } | DeltaOp::UnsetAttr { .. })));

        let golden = update_stream(&g, &UpdateStreamConfig::new(1, 6, 42));
        let rendered: Vec<String> = golden[0]
            .ops
            .iter()
            .map(|op| match *op {
                DeltaOp::AddNode(l) => format!("n{l}"),
                DeltaOp::AddEdge(s, t) => format!("+{s}>{t}"),
                DeltaOp::RemoveEdge(s, t) => format!("-{s}>{t}"),
                DeltaOp::RemoveNode(v) => format!("x{v}"),
                _ => "attr".into(),
            })
            .collect();
        assert_eq!(
            rendered,
            ["-83>0", "+65>34", "-147>80", "+61>148", "+287>179", "x83"],
            "structural stream drifted from the pre-attribute generator"
        );
    }

    #[test]
    fn insert_only_grows_delete_only_shrinks() {
        let g = base();
        let grow = update_stream(&g, &UpdateStreamConfig::new(3, 30, 7).insert_only());
        let mut dg = DynGraph::from_digraph(&g);
        for d in &grow {
            dg.apply(d).unwrap();
        }
        assert!(dg.edge_count() >= g.edge_count());

        let shrink = update_stream(&g, &UpdateStreamConfig::new(3, 30, 7).delete_only());
        let mut dg = DynGraph::from_digraph(&g);
        for d in &shrink {
            dg.apply(d).unwrap();
        }
        assert!(dg.edge_count() < g.edge_count());
    }
}
