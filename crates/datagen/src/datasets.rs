//! Scaled-down emulators of the paper's three real-life datasets.
//!
//! The originals (SNAP Amazon, ArnetMiner Citation, SFU YouTube crawls) are
//! not redistributable here, so each emulator reproduces the properties the
//! experiments actually exercise — size ratio, degree skew, cyclic vs
//! acyclic structure, label selectivity, attribute schema — at a chosen
//! [`Scale`] of the paper's node/edge counts (DESIGN.md §2 documents the
//! substitution argument per dataset).
//!
//! | dataset | paper size (V/E) | structure | label | attributes |
//! |---|---|---|---|---|
//! | Amazon | 548,552 / 1,788,725 | cyclic co-purchase | product group bucket | `group`, `sales_rank` |
//! | Citation | 1,397,240 / 3,021,489 | DAG (cites older) | research area | `area`, `year`, `venue` |
//! | YouTube | 1,609,969 / 4,509,826 | cyclic recommend | video category | `category`, `age`, `views`, `rate` |

use gpm_graph::{Attributes, DiGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::synthetic::{synthetic_graph, SyntheticConfig};

/// Experiment scale relative to the paper's dataset sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 1/100 — unit tests, smoke runs.
    Small,
    /// 1/20 — default experiment scale (laptop-friendly minutes).
    Medium,
    /// 1/1 — the paper's sizes (hours; needs several GB of RAM).
    Paper,
}

impl Scale {
    /// Multiplier applied to the paper's node/edge counts.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Small => 0.01,
            Scale::Medium => 0.05,
            Scale::Paper => 1.0,
        }
    }

    fn apply(self, n: usize) -> usize {
        ((n as f64 * self.factor()) as usize).max(100)
    }

    /// Parses the harness flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// YouTube category names; `category` is also the node label, which is what
/// the Fig. 4 patterns filter on.
pub const YOUTUBE_CATEGORIES: [&str; 12] = [
    "music",
    "entertainment",
    "comedy",
    "film",
    "news",
    "sports",
    "gaming",
    "howto",
    "people",
    "travel",
    "autos",
    "education",
];

/// Amazon-like co-purchase network.
pub fn amazon_like(scale: Scale, seed: u64) -> DiGraph {
    let nodes = scale.apply(548_552);
    let edges = scale.apply(1_788_725);
    let base = synthetic_graph(&SyntheticConfig {
        nodes,
        edges,
        labels: 40, // product-group buckets
        seed,
        uniform_mix: 0.25,
        back_edge_fraction: 0.35, // "people who buy x also buy y" is mutual
        closure: 0.55,
        reciprocity: 0.4,
    });
    attach_attrs(base, seed, |rng, label, attrs| {
        let groups = ["Book", "Music", "DVD", "Video", "Toy", "Software"];
        attrs.set("group", groups[(label % groups.len() as u32) as usize]);
        attrs.set("sales_rank", rng.random_range(1..1_000_000i64));
    })
}

/// Citation-like DAG (papers cite strictly older papers).
pub fn citation_like(scale: Scale, seed: u64) -> DiGraph {
    let nodes = scale.apply(1_397_240);
    let edges = scale.apply(3_021_489);
    let base = synthetic_graph(&SyntheticConfig {
        nodes,
        edges,
        labels: 30, // research areas
        seed,
        uniform_mix: 0.2,
        back_edge_fraction: 0.0, // DAG
        closure: 0.45,           // co-citation clustering
        reciprocity: 0.0,
    });
    attach_attrs(base, seed, |rng, label, attrs| {
        attrs.set("area", format!("area{label}"));
        attrs.set("year", rng.random_range(1980..2013i64));
        attrs.set("venue", format!("venue{}", rng.random_range(0..200u32)));
    })
}

/// YouTube-like recommendation network.
pub fn youtube_like(scale: Scale, seed: u64) -> DiGraph {
    let nodes = scale.apply(1_609_969);
    let edges = scale.apply(4_509_826);
    let base = synthetic_graph(&SyntheticConfig {
        nodes,
        edges,
        labels: YOUTUBE_CATEGORIES.len() as u32,
        seed,
        uniform_mix: 0.25,
        back_edge_fraction: 0.3,
        closure: 0.5,
        reciprocity: 0.45, // related-video links are often mutual
    });
    attach_attrs(base, seed, |rng, label, attrs| {
        attrs.set("category", YOUTUBE_CATEGORIES[label as usize]);
        attrs.set("age", rng.random_range(1..2000i64));
        attrs.set("views", rng.random_range(0..1_000_000i64));
        attrs.set("rate", (rng.random_range(0..50i64) as f64) / 10.0);
    })
}

/// Rebuilds a generated topology with per-node attributes derived from the
/// label plus dataset-specific randomness.
fn attach_attrs(
    base: DiGraph,
    seed: u64,
    mut fill: impl FnMut(&mut StdRng, u32, &mut Attributes),
) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let mut b = GraphBuilder::with_capacity(base.node_count(), base.edge_count());
    for v in base.nodes() {
        let mut attrs = Attributes::new();
        fill(&mut rng, base.label(v), &mut attrs);
        b.add_node_with_attrs(base.label(v), attrs);
    }
    for e in base.edges() {
        b.add_edge(e.source, e.target).expect("nodes exist");
    }
    b.build()
}

/// Label id of a YouTube category name (for pattern construction).
pub fn youtube_label(category: &str) -> Option<u32> {
    YOUTUBE_CATEGORIES.iter().position(|&c| c == category).map(|i| i as u32)
}

#[allow(unused)]
fn _id(_: NodeId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::stats::GraphStats;

    #[test]
    fn scales() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert!(Scale::Small.factor() < Scale::Medium.factor());
    }

    #[test]
    fn amazon_shape() {
        let g = amazon_like(Scale::Small, 1);
        assert!(g.node_count() >= 5_000);
        assert!(g.has_attributes());
        let a = g.attributes(0).unwrap();
        assert!(a.get("group").is_some());
        assert!(a.get("sales_rank").is_some());
        assert!(!GraphStats::compute(&g).is_dag);
    }

    #[test]
    fn citation_is_dag_with_attrs() {
        let g = citation_like(Scale::Small, 2);
        assert!(GraphStats::compute(&g).is_dag);
        let a = g.attributes(0).unwrap();
        let year = a.get("year").and_then(|v| v.as_f64()).unwrap();
        assert!((1980.0..2013.0).contains(&year));
    }

    #[test]
    fn youtube_labels_match_categories() {
        let g = youtube_like(Scale::Small, 3);
        assert!(!GraphStats::compute(&g).is_dag);
        assert_eq!(youtube_label("music"), Some(0));
        assert_eq!(youtube_label("nope"), None);
        for v in g.nodes().take(50) {
            let cat = g
                .attributes(v)
                .unwrap()
                .get("category")
                .and_then(|c| c.as_str())
                .unwrap()
                .to_owned();
            assert_eq!(youtube_label(&cat), Some(g.label(v)));
        }
    }

    #[test]
    fn reproducible() {
        let a = youtube_like(Scale::Small, 9);
        let b = youtube_like(Scale::Small, 9);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.labels(), b.labels());
    }
}
