//! # gpm-datagen
//!
//! Data and workload generation for the experiments of Section 6:
//!
//! * [`fixtures`] — the paper's running example (Fig. 1): the collaboration
//!   network `G`, the cyclic pattern `Q` and Example 7's DAG pattern `Q1`,
//!   reconstructed so that **every** number in Examples 1–10 is reproduced
//!   (see `DESIGN.md` §3);
//! * [`synthetic`] — the linkage-model generator the paper's synthetic data
//!   uses: preferential attachment controlled by `(|V|, |E|)` over a
//!   15-label alphabet;
//! * [`datasets`] — scaled-down emulators of the three real-life graphs
//!   (Amazon co-purchase, Citation DAG, YouTube recommendation) with the
//!   attribute schemas the paper describes;
//! * [`patterns`] — pattern generation: extraction-based (guarantees a
//!   nonempty `Mu`, like the paper's hand-constructed queries), plus the
//!   Fig. 4 queries `Q1`/`Q2`;
//! * [`update_stream`] — delta-batch generation for the dynamic-graph
//!   workloads served by `gpm-incremental`.

pub mod datasets;
pub mod fixtures;
pub mod patterns;
pub mod synthetic;
pub mod update_stream;

pub use datasets::{amazon_like, citation_like, youtube_like, Scale};
pub use fixtures::{fig1_graph, fig1_pattern, fig1_pattern_q1};
pub use patterns::{extract_pattern, PatternGenConfig};
pub use synthetic::{synthetic_graph, SyntheticConfig};
pub use update_stream::{update_stream, UpdateStreamConfig};
