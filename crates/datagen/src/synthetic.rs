//! Synthetic graphs via the linkage-generation model.
//!
//! Section 6: "We generated synthetic graphs following the linkage
//! generation models [12]: an edge was attached to the high degree nodes
//! with higher probability", controlled by `(|V|, |E|)` with labels from a
//! set of 15. We implement degree-proportional endpoint sampling with the
//! classic endpoint-pool trick (each inserted edge pushes both endpoints
//! into a pool; sampling the pool is sampling ∝ degree), smoothed with a
//! uniform component so low-degree nodes stay reachable.

use gpm_graph::{DiGraph, GraphBuilder, Label, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|` (approximate; parallel duplicates are dropped).
    pub edges: usize,
    /// Alphabet size (paper: 15).
    pub labels: u32,
    /// RNG seed.
    pub seed: u64,
    /// Probability that an edge endpoint is sampled uniformly instead of
    /// degree-proportionally (smoothing).
    pub uniform_mix: f64,
    /// Fraction of edges drawn between two *existing* nodes in either
    /// direction — these create cycles. `0.0` yields a DAG (all remaining
    /// edges point from newer to older nodes, citation-style).
    pub back_edge_fraction: f64,
    /// Probability that a growth edge closes a triangle (attaches to a
    /// successor of the previous target). Real co-purchase/recommendation
    /// graphs are heavily clustered; pure PA is not.
    pub closure: f64,
    /// Probability that a pass-2 edge reciprocates an existing edge
    /// (creates 2-cycles; ignored when `back_edge_fraction = 0`).
    pub reciprocity: f64,
}

impl SyntheticConfig {
    /// Paper-style cyclic graph: `(|V|, |E|)` with 15 labels.
    pub fn paper(nodes: usize, edges: usize, seed: u64) -> Self {
        SyntheticConfig {
            nodes,
            edges,
            labels: 15,
            seed,
            uniform_mix: 0.2,
            back_edge_fraction: 0.3,
            closure: 0.5,
            reciprocity: 0.35,
        }
    }

    /// Scalability-sweep variant: cyclic but not SCC-dominated (moderate
    /// back edges/reciprocity keep reachability heterogeneous, which the
    /// top-k experiments need; the paper's linkage graphs at |E| = 2|V| are
    /// similarly sparse).
    pub fn sweep(nodes: usize, edges: usize, seed: u64) -> Self {
        SyntheticConfig {
            back_edge_fraction: 0.2,
            reciprocity: 0.3,
            closure: 0.55,
            ..Self::paper(nodes, edges, seed)
        }
    }

    /// DAG variant (new→old edges only).
    pub fn dag(nodes: usize, edges: usize, seed: u64) -> Self {
        SyntheticConfig {
            back_edge_fraction: 0.0,
            reciprocity: 0.0,
            ..Self::paper(nodes, edges, seed)
        }
    }
}

/// Generates a synthetic graph.
pub fn synthetic_graph(cfg: &SyntheticConfig) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes.max(1);
    let mut b = GraphBuilder::with_capacity(n, cfg.edges);
    for _ in 0..n {
        let l: Label = rng.random_range(0..cfg.labels.max(1));
        b.add_node(l);
    }

    // Endpoint pool for degree-proportional sampling, the running edge list
    // for reciprocity sampling, and per-node out-lists for triadic closure.
    let mut pool: Vec<NodeId> = Vec::with_capacity(cfg.edges * 2);
    let mut edge_list: Vec<(NodeId, NodeId)> = Vec::with_capacity(cfg.edges);
    let mut out_of: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let pick_old = |rng: &mut StdRng, pool: &[NodeId], upper: usize| -> NodeId {
        if pool.is_empty() || rng.random::<f64>() < cfg.uniform_mix {
            rng.random_range(0..upper as u32)
        } else {
            pool[rng.random_range(0..pool.len())]
        }
    };

    let mut added = 0usize;
    // Pass 1: growth — each node beyond the first attaches edges to
    // already-present nodes (new → old: acyclic backbone). A
    // `back_edge_fraction` share of the budget is reserved for pass 2.
    let pass1_budget = ((cfg.edges as f64) * (1.0 - cfg.back_edge_fraction)) as usize;
    let per_node = pass1_budget / n.max(1);
    for v in 1..n as NodeId {
        // Heavy-tailed out-degree (real citation / co-purchase out-degrees
        // are): most nodes get the base degree, a few get bursts — bursts
        // are what create dense clusters once closure chains through them.
        // The fractional part of the target mean is dithered so |E|/|V|
        // between 1 and 2 still yields two-edge (triangle-capable) nodes.
        let mean = pass1_budget as f64 / n as f64;
        let frac = (mean - mean.floor()).clamp(0.0, 1.0);
        let mut degree = per_node.max(1);
        if rng.random::<f64>() < frac {
            degree += 1;
        }
        while rng.random::<f64>() < 0.18 && degree < per_node.max(1) + 10 {
            degree += 2;
        }
        let mut prev_target: Option<NodeId> = None;
        for _ in 0..degree {
            if added >= pass1_budget {
                break;
            }
            // Triadic closure: attach to a successor of the previous target
            // (all older than v, so the backbone stays acyclic).
            let mut t = match prev_target {
                Some(pt)
                    if rng.random::<f64>() < cfg.closure && !out_of[pt as usize].is_empty() =>
                {
                    let outs = &out_of[pt as usize];
                    outs[rng.random_range(0..outs.len())]
                }
                _ => pick_old(&mut rng, &pool, v as usize),
            };
            if t >= v {
                t = rng.random_range(0..v);
            }
            b.add_edge(v, t).expect("nodes exist");
            edge_list.push((v, t));
            out_of[v as usize].push(t);
            pool.push(v);
            pool.push(t);
            prev_target = Some(t);
            added += 1;
        }
    }
    // Pass 2: remaining edges. Back edges (old → new or arbitrary) create
    // cycles; otherwise keep the new→old orientation.
    let cyclic = cfg.back_edge_fraction > 0.0;
    while added < cfg.edges {
        // Reciprocity: mirror an existing edge (only in cyclic mode).
        if cyclic && !edge_list.is_empty() && rng.random::<f64>() < cfg.reciprocity {
            let (s, t) = edge_list[rng.random_range(0..edge_list.len())];
            b.add_edge(t, s).expect("nodes exist");
            pool.push(s);
            pool.push(t);
            added += 1;
            continue;
        }
        let a = pick_old(&mut rng, &pool, n);
        let c = pick_old(&mut rng, &pool, n);
        if a == c {
            added += 1; // count the attempt so degenerate configs terminate
            continue;
        }
        let (s, t) = if rng.random::<f64>() < cfg.back_edge_fraction {
            (a.min(c), a.max(c)) // old → new: closes cycles against pass 1
        } else {
            (a.max(c), a.min(c))
        };
        b.add_edge(s, t).expect("nodes exist");
        edge_list.push((s, t));
        pool.push(s);
        pool.push(t);
        added += 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::stats::GraphStats;

    #[test]
    fn respects_sizes_and_is_reproducible() {
        let cfg = SyntheticConfig::paper(2_000, 4_000, 42);
        let g1 = synthetic_graph(&cfg);
        let g2 = synthetic_graph(&cfg);
        assert_eq!(g1.node_count(), 2_000);
        // Duplicates get dropped; expect close to the target.
        assert!(g1.edge_count() > 3_000, "got {}", g1.edge_count());
        assert_eq!(g1.edge_count(), g2.edge_count(), "same seed, same graph");
        assert_eq!(g1.labels(), g2.labels());
        assert!(g1.distinct_label_count() <= 15);
    }

    #[test]
    fn dag_config_produces_dag() {
        let cfg = SyntheticConfig::dag(1_000, 2_000, 7);
        let g = synthetic_graph(&cfg);
        let s = GraphStats::compute(&g);
        assert!(s.is_dag, "new→old edges cannot close a cycle");
    }

    #[test]
    fn cyclic_config_produces_cycles() {
        let cfg = SyntheticConfig::paper(2_000, 6_000, 9);
        let g = synthetic_graph(&cfg);
        let s = GraphStats::compute(&g);
        assert!(!s.is_dag);
        assert!(s.largest_scc > 10, "back edges should grow an SCC core");
    }

    #[test]
    fn skewed_degrees() {
        let cfg = SyntheticConfig::paper(5_000, 15_000, 3);
        let g = synthetic_graph(&cfg);
        let s = GraphStats::compute(&g);
        // Preferential attachment: hubs far above the average degree.
        assert!(s.max_in_degree as f64 > 10.0 * s.avg_out_degree);
    }

    #[test]
    fn tiny_configs_terminate() {
        let g = synthetic_graph(&SyntheticConfig::paper(1, 5, 1));
        assert_eq!(g.node_count(), 1);
        let g2 = synthetic_graph(&SyntheticConfig::paper(2, 0, 1));
        assert_eq!(g2.edge_count(), 0);
    }
}
