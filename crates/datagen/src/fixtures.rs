//! The paper's Fig. 1 running example, reconstructed edge-by-edge.
//!
//! The reconstruction (DESIGN.md §3) is pinned by the paper's examples:
//! `|M(Q,G)| = 15` pairs; the relevant sets of Example 4; the distances of
//! Example 5 (`10/11`, `1/4`, `1`, `0`); the λ-regimes of Example 6
//! (`4/33`, `1/2`); Example 7's bounds for the DAG pattern `Q1`; Example
//! 8's shared cycle relevant set; Examples 9/10's `F'`/`F''` values; and —
//! from Example 1 — the facts that subgraph isomorphism finds **no** match
//! (no DB/PRG 2-cycle shares an ST child with its partner, and the 4-cycle
//! region has no 2-cycle at all) while simulation matches every `PMi`.

use gpm_graph::{DiGraph, GraphBuilder, NodeId};
use gpm_pattern::{Pattern, PatternBuilder, Predicate};

/// Labels of the collaboration network.
pub mod labels {
    /// Project manager.
    pub const PM: u32 = 0;
    /// Database developer.
    pub const DB: u32 = 1;
    /// Programmer.
    pub const PRG: u32 = 2;
    /// Software tester.
    pub const ST: u32 = 3;
    /// Business analyst.
    pub const BA: u32 = 4;
    /// UI developer.
    pub const UD: u32 = 5;
}

/// Builds the Fig. 1 data graph `G` (18 nodes, 27 edges).
pub fn fig1_graph() -> DiGraph {
    use labels::*;
    let mut b = GraphBuilder::new();
    let pm: Vec<NodeId> = (1..=4).map(|i| b.add_named_node(format!("PM{i}"), PM)).collect();
    let db: Vec<NodeId> = (1..=3).map(|i| b.add_named_node(format!("DB{i}"), DB)).collect();
    let prg: Vec<NodeId> = (1..=4).map(|i| b.add_named_node(format!("PRG{i}"), PRG)).collect();
    let st: Vec<NodeId> = (1..=4).map(|i| b.add_named_node(format!("ST{i}"), ST)).collect();
    let ba1 = b.add_named_node("BA1", BA);
    let ud1 = b.add_named_node("UD1", UD);
    let ud2 = b.add_named_node("UD2", UD);

    let (pm1, pm2, pm3, pm4) = (pm[0], pm[1], pm[2], pm[3]);
    let (db1, db2, db3) = (db[0], db[1], db[2]);
    let (prg1, prg2, prg3, prg4) = (prg[0], prg[1], prg[2], prg[3]);
    let (st1, st2, st3, st4) = (st[0], st[1], st[2], st[3]);

    let edges = [
        // PM1's group: a DB⇄PRG 2-cycle with *distinct* ST children.
        (pm1, db1),
        (pm1, prg1),
        (db1, prg1),
        (prg1, db1),
        (db1, st2),
        (prg1, st1),
        // PM2/PM3/PM4 share the 4-cycle DB2→PRG2→DB3→PRG3→DB2.
        (pm2, db2),
        (pm2, prg3),
        (pm2, prg4),
        (pm2, ba1),
        (pm3, db2),
        (pm3, prg3),
        (pm4, db2),
        (pm4, prg3),
        (db2, prg2),
        (prg2, db3),
        (db3, prg3),
        (prg3, db2),
        (db2, st3),
        (prg2, st4),
        (db3, st4),
        (prg3, st3),
        // PRG4 hangs off the cycle and additionally supervises ST2/ST3.
        (prg4, db2),
        (prg4, st2),
        (prg4, st3),
        // Flavor nodes outside the pattern's labels.
        (ba1, ud1),
        (ba1, ud2),
    ];
    for (s, t) in edges {
        b.add_edge(s, t).expect("fixture nodes exist");
    }
    b.build()
}

/// The Fig. 1(a) pattern `Q`: `PM* → DB`, `PM → PRG`, `DB ⇄ PRG`,
/// `DB → ST`, `PRG → ST`.
pub fn fig1_pattern() -> Pattern {
    use labels::*;
    let mut b = PatternBuilder::new();
    b.node("PM", Predicate::Label(PM));
    b.node("DB", Predicate::Label(DB));
    b.node("PRG", Predicate::Label(PRG));
    b.node("ST", Predicate::Label(ST));
    for (f, t) in
        [("PM", "DB"), ("PM", "PRG"), ("DB", "PRG"), ("PRG", "DB"), ("DB", "ST"), ("PRG", "ST")]
    {
        b.edge_by_name(f, t).expect("nodes exist");
    }
    b.output_by_name("PM").expect("PM exists");
    b.build().expect("valid pattern")
}

/// Example 7's DAG pattern `Q1`: `PM* → DB`, `PM → PRG`, `PRG → DB`.
pub fn fig1_pattern_q1() -> Pattern {
    use labels::*;
    let mut b = PatternBuilder::new();
    b.node("PM", Predicate::Label(PM));
    b.node("DB", Predicate::Label(DB));
    b.node("PRG", Predicate::Label(PRG));
    b.edge_by_name("PM", "DB").expect("nodes exist");
    b.edge_by_name("PM", "PRG").expect("nodes exist");
    b.edge_by_name("PRG", "DB").expect("nodes exist");
    b.output_by_name("PM").expect("PM exists");
    b.build().expect("valid pattern")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let g = fig1_graph();
        assert_eq!(g.node_count(), 18);
        assert_eq!(g.edge_count(), 27);
        assert_eq!(g.node_by_name("PM2").map(|v| g.label(v)), Some(labels::PM));
        let q = fig1_pattern();
        assert_eq!(q.node_count(), 4);
        assert_eq!(q.edge_count(), 6);
        assert!(!q.is_dag());
        let q1 = fig1_pattern_q1();
        assert!(q1.is_dag());
        assert_eq!(q1.size(), 6);
    }

    #[test]
    fn no_isomorphic_match_exists() {
        // Example 1: subgraph isomorphism finds nothing. The pattern needs
        // x(DB) ⇄ y(PRG) with a COMMON st child plus a PM parent of both.
        let g = fig1_graph();
        let db1 = g.node_by_name("DB1").unwrap();
        let prg1 = g.node_by_name("PRG1").unwrap();
        // The only 2-cycle is DB1⇄PRG1:
        let mut two_cycles = Vec::new();
        for v in g.nodes() {
            for &w in g.successors(v) {
                if v < w && g.has_edge(w, v) {
                    two_cycles.push((v, w));
                }
            }
        }
        assert_eq!(two_cycles, vec![(db1, prg1)]);
        // … and DB1, PRG1 share no common ST child.
        let st_children = |v: u32| -> Vec<u32> {
            g.successors(v).iter().copied().filter(|&w| g.label(w) == labels::ST).collect()
        };
        let a = st_children(db1);
        let b = st_children(prg1);
        assert!(a.iter().all(|x| !b.contains(x)));
    }
}
