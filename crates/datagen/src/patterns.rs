//! Pattern workload generation.
//!
//! The paper hand-constructed its query sets (9 synthetic patterns, 10 for
//! Amazon, 14 for Citation, 10 for YouTube) with guaranteed matches. Our
//! stand-in is **extract-and-verify**: propose a pattern by quotienting a
//! random forward walk of the data graph by node label (so the proposal
//! reflects real structure and hits the paper's dense shapes like
//! `(4,8)`), then verify with one simulation run that `Mu(Q,G,uo) ≠ ∅`,
//! retrying with fresh seeds otherwise. Sizes follow the paper's sweeps:
//! [`CYCLIC_SIZES`], [`DAG_SIZES`], [`SMALL_DAG_SIZES`].
//!
//! The Fig. 4 case-study queries `Q1`/`Q2` are reconstructed with their
//! attribute predicates ([`q1_youtube`], [`q2_youtube`]).

use gpm_graph::DiGraph;
use gpm_pattern::{CmpOp, Pattern, PatternBuilder, Predicate};
use gpm_simulation::compute_simulation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Cyclic `|Q|` sweep of Figures 5(a)/5(d)/5(k): `(|Vp|, |Ep|)`.
pub const CYCLIC_SIZES: [(usize, usize); 5] = [(4, 8), (5, 10), (6, 12), (7, 14), (8, 16)];
/// DAG `|Q|` sweep of Figures 5(b)/5(e): `(|Vp|, |Ep|)`.
pub const DAG_SIZES: [(usize, usize); 4] = [(4, 6), (6, 9), (8, 12), (10, 15)];
/// Small-DAG sweep of Figure 5(j).
pub const SMALL_DAG_SIZES: [(usize, usize); 5] = [(3, 2), (4, 3), (5, 4), (6, 5), (7, 6)];

/// Parameters for extract-and-verify pattern generation.
#[derive(Debug, Clone)]
pub struct PatternGenConfig {
    /// Target `|Vp|`.
    pub nodes: usize,
    /// Target `|Ep|`.
    pub edges: usize,
    /// `true` → DAG pattern; `false` → must contain a cycle.
    pub dag: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Proposal/verification attempts before giving up.
    pub max_tries: usize,
    /// Minimum `|Mu(Q,G,uo)|` accepted by verification. The paper's query
    /// sets return plenty of output matches (e.g. "≥ 180" on YouTube); a
    /// floor keeps top-k experiments meaningful.
    pub min_matches: usize,
    /// When set and the graph carries attributes, each non-output pattern
    /// node additionally gets a numeric attribute predicate of roughly this
    /// selectivity (like the paper's real-life queries, e.g. `R > 2`,
    /// `V > 5000`). Thresholds are capped so the extraction witness still
    /// matches.
    pub attr_selectivity: Option<f64>,
}

impl PatternGenConfig {
    /// Default configuration for a `(nodes, edges)` size.
    pub fn new(nodes: usize, edges: usize, dag: bool, seed: u64) -> Self {
        PatternGenConfig {
            nodes,
            edges,
            dag,
            seed,
            max_tries: 200,
            min_matches: 1,
            attr_selectivity: None,
        }
    }
}

/// Extracts a pattern with a verified nonempty `Mu(Q,G,uo)`.
pub fn extract_pattern(g: &DiGraph, cfg: &PatternGenConfig) -> Option<Pattern> {
    // The start pool depends only on the graph — compute it once, not per
    // retry (the sweep is the expensive part of a proposal).
    let pool = density_start_pool(g);
    if pool.is_empty() {
        return None;
    }
    for attempt in 0..cfg.max_tries {
        let seed = cfg.seed.wrapping_add(attempt as u64).wrapping_mul(0x9E3779B97F4A7C15);
        if let Some(q) = propose_with_pool(g, cfg, seed, &pool) {
            let sim = compute_simulation(g, &q);
            if sim.graph_matches() && sim.output_matches(&q).len() >= cfg.min_matches.max(1) {
                return Some(q);
            }
        }
    }
    None
}

/// Start candidates for dense-subgraph proposals. Dense pattern shapes
/// (`|Ep| ≈ 2|Vp|`) only embed into near-cliques, which are *rare* —
/// random probing misses them — so build a deterministic hot pool from two
/// global sweeps (top nodes by reciprocal out-degree, which finds
/// mutual-link clusters, and top nodes by total degree, which finds
/// hub-anchored ones), then keep the densest tier by the density of a
/// small successor window (reciprocal + successor-successor links). Raw
/// out-degree alone favors mega-hubs whose neighborhoods are broad but
/// sparse. Triangle-free graphs (e.g. citation DAGs) score everything 0
/// and degrade to the degree ordering, which is the right bias there.
pub fn density_start_pool(g: &DiGraph) -> Vec<u32> {
    const POOL: usize = 64;
    let n = g.node_count();
    let window_density = |v: u32| -> usize {
        let succs = g.successors(v);
        let window = &succs[..succs.len().min(12)];
        let mut score = 0usize;
        for (i, &w) in window.iter().enumerate() {
            score += usize::from(g.has_edge(w, v)); // reciprocal
            for &x in &window[i + 1..] {
                score += usize::from(g.has_edge(w, x)) + usize::from(g.has_edge(x, w));
            }
        }
        score
    };
    let mut by_recip: Vec<(usize, u32)> = (0..n as u32)
        .filter(|&v| g.out_degree(v) > 0)
        .map(|v| {
            let recip = g.successors(v).iter().filter(|&&w| g.has_edge(w, v)).count();
            (recip, v)
        })
        .collect();
    if by_recip.is_empty() {
        return Vec::new();
    }
    let mut by_degree = by_recip.clone();
    for e in by_degree.iter_mut() {
        e.0 = g.out_degree(e.1) + g.in_degree(e.1);
    }
    by_recip.sort_unstable_by(|a, b| b.cmp(a));
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    let mut pool: Vec<u32> =
        by_recip.iter().take(POOL).chain(by_degree.iter().take(POOL)).map(|&(_, v)| v).collect();
    pool.sort_unstable();
    pool.dedup();
    let mut scored: Vec<(usize, u32)> = pool.into_iter().map(|v| (window_density(v), v)).collect();
    scored.sort_unstable_by(|a, b| b.cmp(a));
    scored.truncate(24);
    scored.into_iter().map(|(_, v)| v).collect()
}

/// One dense-subgraph proposal (unverified; public for diagnostics).
///
/// Grows `cfg.nodes` pattern *slots*, each mapped to a data node (possibly
/// mapping two slots to the same data node — a pattern may repeat a role,
/// and the slot map stays a valid simulation witness). Every new slot is a
/// successor of an existing slot's data node, chosen to maximize the number
/// of realizable pattern edges; the spanning tree from the root plus the
/// densest extras become the pattern edges, labels are copied from the
/// data. Because each pattern edge mirrors a real data edge between the
/// slot images, `Mu(Q,G,uo)` is nonempty **by construction** (the
/// verification pass in [`extract_pattern`] is a safety net).
pub fn propose_pattern(g: &DiGraph, cfg: &PatternGenConfig, seed: u64) -> Option<Pattern> {
    propose_with_pool(g, cfg, seed, &density_start_pool(g))
}

/// [`propose_pattern`] with a precomputed [`density_start_pool`] (the pool
/// is graph-determined; callers that retry share one sweep).
fn propose_with_pool(
    g: &DiGraph,
    cfg: &PatternGenConfig,
    seed: u64,
    pool: &[u32],
) -> Option<Pattern> {
    let n = g.node_count();
    if n == 0 || cfg.nodes == 0 || cfg.edges + 1 < cfg.nodes || pool.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    const MAX_MULT: usize = 2; // copies of one data node
    const SCAN_CAP: usize = 96;

    // The seed picks a pool member; retries in `extract_pattern` land on
    // different near-clique anchors.
    let start = pool[rng.random_range(0..pool.len())];
    if g.out_degree(start) == 0 {
        return None;
    }

    // Slot growth. Candidates come from successors *and* predecessors of
    // the current slots (dense clusters are entered from either side); a
    // candidate is only eligible when some slot has an edge **to** it, so
    // the spanning tree from the output node stays constructible.
    let mut slot_data: Vec<u32> = vec![start];
    let mut parent_edge: Vec<(u32, u32)> = Vec::new(); // spanning tree over slots
    while slot_data.len() < cfg.nodes {
        let mut best: Option<(usize, u32, u32)> = None; // (gain, parent slot, data node)
        let consider = |w: u32, slot_data: &[u32], best: &mut Option<(usize, u32, u32)>| {
            if slot_data.iter().filter(|&&s| s == w).count() >= MAX_MULT {
                return;
            }
            // A tree parent: some existing slot with a data edge to w.
            let Some(pi) = slot_data.iter().position(|&s| s != w && g.has_edge(s, w)) else {
                return;
            };
            // Pattern edges a w-slot could realize against existing slots.
            let gain = slot_data
                .iter()
                .filter(|&&s| s != w)
                .map(|&s| usize::from(g.has_edge(s, w)) + usize::from(g.has_edge(w, s)))
                .sum::<usize>();
            if best.is_none_or(|(d, _, _)| gain > d) {
                *best = Some((gain, pi as u32, w));
            }
        };
        for &v in slot_data.iter() {
            for neigh in [g.successors(v), g.predecessors(v)] {
                let take = neigh.len().min(SCAN_CAP);
                let offset = if neigh.len() > take {
                    rng.random_range(0..neigh.len() - take + 1)
                } else {
                    0
                };
                for &w in &neigh[offset..offset + take] {
                    consider(w, &slot_data, &mut best);
                }
            }
        }
        let (_, pi, w) = best?;
        parent_edge.push((pi, slot_data.len() as u32));
        slot_data.push(w);
    }

    // All realizable pattern edges (slot pairs whose data nodes are linked).
    let k = slot_data.len();
    let mut internal: Vec<(u32, u32)> = Vec::new();
    for i in 0..k {
        for j in 0..k {
            if i == j || slot_data[i] == slot_data[j] {
                continue;
            }
            if g.has_edge(slot_data[i], slot_data[j]) {
                internal.push((i as u32, j as u32));
            }
        }
    }

    // Tree edges first (they keep the output a root), then extras.
    let mut chosen: Vec<(u32, u32)> = parent_edge.clone();
    // No edges into slot 0: the output node stays outside every cycle (as
    // in the paper's patterns, e.g. PM), so output matches keep distinct
    // relevant sets instead of collapsing into one shared cycle set.
    let mut extras: Vec<(u32, u32)> =
        internal.iter().copied().filter(|e| !chosen.contains(e) && e.1 != 0).collect();
    for i in (1..extras.len()).rev() {
        let j = rng.random_range(0..i + 1);
        extras.swap(i, j);
    }
    if !cfg.dag {
        // Prefer cycle-closing edges so the cyclic requirement is met.
        extras.sort_by_key(|&(s, t)| !creates_cycle(&chosen, cfg.nodes, s, t));
    }
    for &(s, t) in &extras {
        if chosen.len() >= cfg.edges {
            break;
        }
        if cfg.dag && creates_cycle(&chosen, cfg.nodes, s, t) {
            continue;
        }
        chosen.push((s, t));
    }
    if chosen.len() != cfg.edges {
        return None;
    }
    if !cfg.dag && !has_cycle(&chosen, cfg.nodes) {
        return None;
    }

    let mut b = PatternBuilder::new();
    for (i, &v) in slot_data.iter().enumerate() {
        let label = Predicate::Label(g.label(v));
        // Attach a predicate to roughly half the non-output slots: the
        // paper's queries mix plain labels with attribute conditions.
        let pred = match cfg.attr_selectivity {
            Some(sel) if i > 0 && g.has_attributes() && rng.random::<f64>() < 0.6 => {
                match attr_condition(g, v, sel, &mut rng) {
                    Some(cond) => Predicate::And(vec![label, cond]),
                    None => label,
                }
            }
            _ => label,
        };
        b.node(String::new(), pred);
    }
    for &(s, t) in &chosen {
        b.edge(s, t).ok()?;
    }
    b.output(0).ok()?;
    let q = b.build().ok()?;
    debug_assert!(q.output_is_root());
    Some(q)
}

/// Builds a `attr >= threshold` condition of roughly `sel` selectivity that
/// the witness node `v` satisfies. The attribute range is estimated from a
/// node sample; string attributes are skipped.
fn attr_condition(
    g: &DiGraph,
    v: gpm_graph::NodeId,
    sel: f64,
    rng: &mut StdRng,
) -> Option<Predicate> {
    let attrs = g.attributes(v)?;
    let numeric: Vec<(&str, f64)> =
        attrs.iter().filter_map(|(k, a)| a.as_f64().map(|x| (k, x))).collect();
    if numeric.is_empty() {
        return None;
    }
    let (key, witness) = numeric[rng.random_range(0..numeric.len())];
    // Estimate the attribute range over a sample.
    let n = g.node_count() as u32;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for _ in 0..200 {
        let u = rng.random_range(0..n);
        if let Some(x) = g.attributes(u).and_then(|a| a.get(key)).and_then(|a| a.as_f64()) {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return None;
    }
    // `attr >= t` keeps a ~sel tail of a uniform range; cap at the witness.
    let t = (hi - sel.clamp(0.05, 1.0) * (hi - lo)).min(witness);
    Some(Predicate::attr(key.to_owned(), CmpOp::Ge, t))
}

/// Would adding `(s, t)` close a cycle? (t already reaches s.)
fn creates_cycle(edges: &[(u32, u32)], n: usize, s: u32, t: u32) -> bool {
    let mut stack = vec![t];
    let mut seen = vec![false; n];
    seen[t as usize] = true;
    while let Some(v) = stack.pop() {
        if v == s {
            return true;
        }
        for &(a, b) in edges {
            if a == v && !seen[b as usize] {
                seen[b as usize] = true;
                stack.push(b);
            }
        }
    }
    false
}

fn has_cycle(edges: &[(u32, u32)], n: usize) -> bool {
    // Some edge (a,b) lies on a cycle iff b already reaches a.
    edges.iter().any(|&(a, b)| creates_cycle(edges, n, a, b))
}

/// Generates `count` verified patterns of one size (distinct seeds).
pub fn pattern_suite(
    g: &DiGraph,
    size: (usize, usize),
    dag: bool,
    count: usize,
    seed: u64,
) -> Vec<Pattern> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let cfg = PatternGenConfig::new(size.0, size.1, dag, seed.wrapping_add(1000 * i as u64));
        if let Some(q) = extract_pattern(g, &cfg) {
            out.push(q);
        }
    }
    out
}

/// Fig. 4(a)'s `Q1`: find **music** videos (`C = "music"`, `R > 2`, output)
/// related to **entertainment** videos (`R > 2`) that recommend each other,
/// both pointing at videos watched more than 5000 times.
pub fn q1_youtube() -> Pattern {
    let mut b = PatternBuilder::new();
    b.node(
        "music",
        Predicate::labeled(
            crate::datasets::youtube_label("music").unwrap(),
            [Predicate::attr("rate", CmpOp::Gt, 2.0)],
        ),
    );
    b.node(
        "entertainment",
        Predicate::labeled(
            crate::datasets::youtube_label("entertainment").unwrap(),
            [Predicate::attr("rate", CmpOp::Gt, 2.0)],
        ),
    );
    b.node("popular", Predicate::attr("views", CmpOp::Gt, 5000i64));
    b.edge_by_name("music", "entertainment").unwrap();
    b.edge_by_name("entertainment", "music").unwrap();
    b.edge_by_name("music", "popular").unwrap();
    b.edge_by_name("entertainment", "popular").unwrap();
    b.output_by_name("music").unwrap();
    b.build().unwrap()
}

/// Fig. 4(b)'s `Q2`: top **comedy** videos (`C = "comedy"`, `R > 3`,
/// output) recommending an **entertainment** video (`A > 500`) that points
/// at a heavily watched video (`V > 7000`), plus an older related video
/// (`A > 800`).
pub fn q2_youtube() -> Pattern {
    let mut b = PatternBuilder::new();
    b.node(
        "comedy",
        Predicate::labeled(
            crate::datasets::youtube_label("comedy").unwrap(),
            [Predicate::attr("rate", CmpOp::Gt, 3.0)],
        ),
    );
    b.node(
        "entertainment",
        Predicate::labeled(
            crate::datasets::youtube_label("entertainment").unwrap(),
            [Predicate::attr("age", CmpOp::Gt, 500i64)],
        ),
    );
    b.node("watched", Predicate::attr("views", CmpOp::Gt, 7000i64));
    b.node("aged", Predicate::attr("age", CmpOp::Gt, 800i64));
    b.edge_by_name("comedy", "entertainment").unwrap();
    b.edge_by_name("entertainment", "watched").unwrap();
    b.edge_by_name("comedy", "aged").unwrap();
    b.output_by_name("comedy").unwrap();
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{youtube_like, Scale};
    use crate::synthetic::{synthetic_graph, SyntheticConfig};

    #[test]
    fn extracts_verified_cyclic_pattern() {
        // 4·|V| edges: at 3·|V| the existence of a rooted (4,8) near-clique
        // is a coin flip of the generator stream; at this density it is
        // robust across seeds (checked for seeds 1–10).
        let g = synthetic_graph(&SyntheticConfig::paper(3_000, 12_000, 5));
        let cfg = PatternGenConfig::new(4, 8, false, 17);
        if let Some(q) = extract_pattern(&g, &cfg) {
            assert_eq!(q.node_count(), 4);
            assert_eq!(q.edge_count(), 8);
            assert!(!q.is_dag());
            assert!(q.output_is_root());
            let sim = compute_simulation(&g, &q);
            assert!(!sim.output_matches(&q).is_empty());
        } else {
            panic!("no (4,8) cyclic pattern found in a dense PA graph");
        }
    }

    #[test]
    fn extracts_verified_dag_pattern() {
        let g = synthetic_graph(&SyntheticConfig::dag(3_000, 7_000, 6));
        let cfg = PatternGenConfig::new(4, 6, true, 23);
        let q = extract_pattern(&g, &cfg).expect("DAG pattern should exist");
        assert!(q.is_dag());
        assert_eq!(q.node_count(), 4);
        assert_eq!(q.edge_count(), 6);
        let sim = compute_simulation(&g, &q);
        assert!(!sim.output_matches(&q).is_empty());
    }

    #[test]
    fn suite_generation() {
        // 4·|V| edges — see extracts_verified_cyclic_pattern.
        let g = synthetic_graph(&SyntheticConfig::paper(2_000, 8_000, 8));
        let suite = pattern_suite(&g, (4, 8), false, 3, 99);
        assert!(!suite.is_empty(), "at least one verified pattern");
        for q in &suite {
            assert_eq!(q.size(), 12);
        }
    }

    #[test]
    fn fig4_queries_build_and_may_match() {
        let q1 = q1_youtube();
        assert!(!q1.is_dag());
        assert_eq!(q1.node_count(), 3);
        assert_eq!(q1.display(q1.output()), "music");
        let q2 = q2_youtube();
        assert!(q2.is_dag());
        assert_eq!(q2.node_count(), 4);
        // On a medium-ish emulator, Q1 should find matches.
        let g = youtube_like(Scale::Small, 4);
        let sim = compute_simulation(&g, &q1);
        // Not guaranteed at tiny scale, but the machinery must not panic.
        let _ = sim.output_matches(&q1);
    }

    #[test]
    fn cycle_helpers() {
        assert!(creates_cycle(&[(0, 1), (1, 2)], 3, 2, 0), "closing edge makes a cycle");
        assert!(!creates_cycle(&[(0, 1), (1, 2)], 3, 0, 2), "forward chord keeps it acyclic");
        assert!(has_cycle(&[(0, 1), (1, 0)], 2));
        assert!(!has_cycle(&[(0, 1), (1, 2)], 3));
    }

    #[test]
    fn impossible_size_returns_none() {
        let g = synthetic_graph(&SyntheticConfig::paper(100, 200, 2));
        // 2 nodes cannot host 5 distinct non-self edges.
        let cfg = PatternGenConfig { max_tries: 5, ..PatternGenConfig::new(2, 5, false, 1) };
        assert!(extract_pattern(&g, &cfg).is_none());
    }
}
