//! # diversified-topk
//!
//! A from-scratch Rust reproduction of **“Diversified Top-k Graph Pattern
//! Matching”** (Wenfei Fan, Xin Wang, Yinghui Wu — PVLDB 6(13), 2013).
//!
//! Graph pattern matching by **graph simulation** with a designated output
//! node: given a pattern `Q` with output node `uo` and a data graph `G`,
//! find the best `k` matches of `uo` instead of the whole (often huge)
//! match relation `M(Q,G)` — ranked by relevance (`δr`, “social impact”),
//! or by the bi-criteria diversification objective `F` that also rewards
//! covering dissimilar parts of the graph (`δd`).
//!
//! ## Quick start
//!
//! ```
//! use diversified_topk::prelude::*;
//!
//! // The paper's Fig. 1 collaboration network and pattern.
//! let g = diversified_topk::datagen::fig1_graph();
//! let q = diversified_topk::datagen::fig1_pattern();
//!
//! // Top-2 project managers by relevance, with early termination.
//! let top = top_k_cyclic(&g, &q, &TopKConfig::new(2));
//! assert_eq!(top.total_relevance(), 14);
//!
//! // Top-2 diversified (λ = 0.5): trades relevance for coverage.
//! let div = top_k_diversified(&g, &q, &DivConfig::new(2, 0.5));
//! assert!(div.f_value > 1.45 && div.f_value < 1.46);
//! ```
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`graph`] | CSR graphs, SCC condensation, bitsets, reachability |
//! | [`pattern`] | patterns with output node and attribute predicates |
//! | [`simulation`] | maximum simulation `M(Q,G)`, match graph |
//! | [`ranking`] | relevant sets, `δr`/`δd`/`F`, bound indexes |
//! | [`core`] | `Match`, `TopKDAG`, `TopK`, `TopKDiv`, `TopKDH` |
//! | [`incremental`] | `DynamicMatcher`: top-k maintained under graph deltas |
//! | [`serving`] | streaming answer service: subscriptions, delta log, versioned answers |
//! | [`telemetry`] | metrics registry, phase tracing, batch flight recorder |
//! | [`datagen`] | Fig. 1 fixture, synthetic generator, dataset emulators, update streams |
//!
//! See `DESIGN.md` for the system inventory and the experiment index
//! mapping every figure of the paper's evaluation to a reproduction target,
//! and `EXPERIMENTS.md` for measured-vs-paper results.

pub use gpm_core as core;
pub use gpm_datagen as datagen;
pub use gpm_graph as graph;
pub use gpm_incremental as incremental;
pub use gpm_pattern as pattern;
pub use gpm_ranking as ranking;
pub use gpm_serving as serving;
pub use gpm_simulation as simulation;
pub use gpm_telemetry as telemetry;

/// The commonly-used surface of the library.
pub mod prelude {
    pub use gpm_core::config::{DivConfig, SelectionStrategy, TopKConfig};
    pub use gpm_core::result::{DivResult, RankedMatch, RunStats, TopKResult};
    pub use gpm_core::{
        top_k, top_k_by_match, top_k_cyclic, top_k_dag, top_k_diversified,
        top_k_diversified_heuristic,
    };
    pub use gpm_graph::{BitSet, DiGraph, GraphBuilder, GraphDelta, NodeId};
    pub use gpm_incremental::{
        AnswerChange, DynamicMatcher, IncrementalConfig, PatternId, PatternRegistry, RegistryStats,
    };
    pub use gpm_pattern::{CmpOp, Pattern, PatternBuilder, Predicate};
    pub use gpm_ranking::bounds::BoundStrategy;
    pub use gpm_serving::{
        AdminServer, AnswerService, AnswerUpdate, Auditor, AuditorConfig, DeltaLog, HealthReport,
        NotifyMode, ServiceConfig, ServiceController, ServiceHandle, Subscription, Telemetry,
        TelemetryConfig,
    };
    pub use gpm_simulation::compute_simulation;
}
