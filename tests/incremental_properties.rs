//! Property tests for the incremental subsystem: a `DynamicMatcher`
//! maintained across random delta streams must agree with a from-scratch
//! `top_k_cyclic` / `top_k_diversified` run on the final graph — for
//! insert-only, delete-only, and mixed streams, and for streams mixing
//! attribute mutations (`SetAttr`/`UnsetAttr`) into the structural churn
//! against attribute-predicate patterns.

use diversified_topk::prelude::*;
use gpm_core::config::DivConfig;
use gpm_core::{top_k_by_match, top_k_cyclic, top_k_diversified};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::{Attributes, DynGraph, GraphBuilder};
use gpm_pattern::builder::label_pattern;
use gpm_pattern::{CmpOp, Pattern, PatternBuilder, Predicate};
use proptest::prelude::*;

/// A random small labeled digraph (same shape as `properties.rs`).
fn arb_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (4usize..20).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
        (labels, edges)
    })
}

/// Per-node initial attributes: bit 0 of the flag grants `k0`, bit 1
/// grants `k1`, with the given small integer values.
type AttrSpec = Vec<(u8, u8, u8)>;

/// A random small digraph whose nodes may start with `k0`/`k1` attributes.
fn arb_attr_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>, AttrSpec)> {
    (4usize..20).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
        let attrs = proptest::collection::vec((0u8..4, 0u8..5, 0u8..5), n);
        (labels, edges, attrs)
    })
}

fn build_attr_graph(
    labels: &[u32],
    edges: &[(u32, u32)],
    attrs: &AttrSpec,
) -> Result<DiGraph, String> {
    let mut b = GraphBuilder::new();
    for (&l, &(flags, v0, v1)) in labels.iter().zip(attrs) {
        let mut a = Attributes::new();
        if flags & 1 != 0 {
            a.set("k0", v0 as i64);
        }
        if flags & 2 != 0 {
            a.set("k1", v1 as i64);
        }
        b.add_node_with_attrs(l, a);
    }
    for &(s, t) in edges {
        b.add_edge(s, t).map_err(|e| e.to_string())?;
    }
    Ok(b.build())
}

/// A small pattern over the same alphabet; node 0 is the output.
fn arb_pattern() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (1usize..5).prop_flat_map(|k| {
        let labels = proptest::collection::vec(0u32..3, k);
        let extra = proptest::collection::vec((0u32..k as u32, 0u32..k as u32), 0..k * 2);
        (labels, extra).prop_map(move |(labels, extra)| {
            let mut edges: Vec<(u32, u32)> = (1..k as u32).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|(a, b)| a != b));
            edges.sort_unstable();
            edges.dedup();
            (labels, edges)
        })
    })
}

/// Per-pattern-node attribute condition: `sel` 0 = label-only, 1 = on
/// `k0`, 2 = on `k1`; `op` selects the comparison, `t` the threshold.
type CondSpec = Vec<(u8, u8, u8)>;

/// A pattern whose nodes may carry attribute conditions over `k0`/`k1`.
fn arb_attr_pattern() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>, CondSpec)> {
    (1usize..5).prop_flat_map(|k| {
        let labels = proptest::collection::vec(0u32..3, k);
        let extra = proptest::collection::vec((0u32..k as u32, 0u32..k as u32), 0..k * 2);
        let conds = proptest::collection::vec((0u8..3, 0u8..4, 0u8..5), k);
        (labels, extra, conds).prop_map(move |(labels, extra, conds)| {
            let mut edges: Vec<(u32, u32)> = (1..k as u32).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|(a, b)| a != b));
            edges.sort_unstable();
            edges.dedup();
            (labels, edges, conds)
        })
    })
}

fn build_attr_pattern(
    plabels: &[u32],
    pedges: &[(u32, u32)],
    conds: &CondSpec,
) -> Result<Pattern, String> {
    let mut b = PatternBuilder::new();
    for (i, (&l, &(sel, op, t))) in plabels.iter().zip(conds).enumerate() {
        let pred = if sel == 0 {
            Predicate::Label(l)
        } else {
            let key = if sel == 1 { "k0" } else { "k1" };
            let op = match op {
                0 => CmpOp::Ge,
                1 => CmpOp::Lt,
                2 => CmpOp::Eq,
                _ => CmpOp::Ne,
            };
            Predicate::labeled(l, [Predicate::attr(key, op, t as i64)])
        };
        b.node(format!("u{i}"), pred);
    }
    for &(s, t) in pedges {
        b.edge(s, t).map_err(|e| e.to_string())?;
    }
    b.output(0).map_err(|e| e.to_string())?;
    b.build().map_err(|e| e.to_string())
}

/// Raw op codes decoded into a `GraphDelta` against the current graph
/// state (so deletions target real ids even after node churn).
type RawOps = Vec<(u8, u32, u32)>;

fn arb_ops(batches: usize) -> impl Strategy<Value = Vec<RawOps>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 1..5),
        batches,
    )
}

/// Raw ops whose code range includes the attribute band (`8..12`).
fn arb_attr_ops(batches: usize) -> impl Strategy<Value = Vec<RawOps>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..12, 0u32..64, 0u32..64), 1..5),
        batches,
    )
}

#[derive(Clone, Copy)]
enum Stream {
    Insert,
    Delete,
    Mixed,
    /// Structural churn with attribute mutations interleaved: raw codes in
    /// `8..12` become `SetAttr`/`UnsetAttr` on `k0`/`k1`.
    AttrMixed,
}

/// Decodes one raw batch into a valid delta for the current graph.
fn decode(g: &DynGraph, ops: &RawOps, kind: Stream) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let n = g.node_count() as u32;
    for &(code, a, b) in ops {
        if matches!(kind, Stream::AttrMixed) && code >= 8 {
            // Attribute op; targeting a tombstoned node is a legal
            // recorded no-op, so no liveness filtering is needed.
            let key = if b % 2 == 0 { "k0" } else { "k1" };
            delta = if code >= 11 {
                delta.unset_attr(a % n, key)
            } else {
                delta.set_attr(a % n, key, (b % 5) as i64)
            };
            continue;
        }
        let insert = match kind {
            Stream::Insert => true,
            Stream::Delete => false,
            Stream::Mixed | Stream::AttrMixed => code % 2 == 0,
        };
        let (a, b) = (a % n, b % n);
        if insert {
            if code >= 6 {
                delta = delta.add_node(a % 3);
            } else if a != b {
                delta = delta.add_edge(a, b);
            }
        } else if code >= 6 {
            delta = delta.remove_node(a);
        } else {
            // Target a real edge when one exists at this source.
            let t = g.successors(a).nth(b as usize % g.out_degree(a).max(1));
            delta = delta.remove_edge(a, t.unwrap_or(b));
        }
    }
    delta
}

#[allow(clippy::too_many_arguments)]
fn check_stream(
    labels: &[u32],
    edges: &[(u32, u32)],
    plabels: &[u32],
    pedges: &[(u32, u32)],
    batches: &[RawOps],
    kind: Stream,
    k: usize,
    lambda: f64,
) -> Result<(), String> {
    let g = graph_from_parts(labels, edges).map_err(|e| e.to_string())?;
    let q = label_pattern(plabels, pedges, 0).map_err(|e| e.to_string())?;
    run_and_compare(&g, &q, batches, kind, k, lambda)
}

/// Replays the batches through a `DynamicMatcher` and compares every
/// answer surface against the static pipeline on the final snapshot.
fn run_and_compare(
    g: &DiGraph,
    q: &Pattern,
    batches: &[RawOps],
    kind: Stream,
    k: usize,
    lambda: f64,
) -> Result<(), String> {
    let mut m = DynamicMatcher::new(g, q.clone(), IncrementalConfig::new(k).lambda(lambda))
        .map_err(|e| e.to_string())?;
    for raw in batches {
        let delta = decode(m.graph(), raw, kind);
        m.apply(&delta).map_err(|e| e.to_string())?;
    }
    let snap = m.snapshot();

    // Relevance ranking: exact agreement with the find-all baseline, and
    // total-relevance agreement with the early-terminating algorithm.
    let base = top_k_by_match(&snap, q, &TopKConfig::new(k));
    let inc = m.top_k();
    if inc.nodes() != base.nodes() {
        return Err(format!("nodes {:?} != {:?}", inc.nodes(), base.nodes()));
    }
    let base_rel: Vec<u64> = base.matches.iter().map(|r| r.relevance).collect();
    let inc_rel: Vec<u64> = inc.matches.iter().map(|r| r.relevance).collect();
    if inc_rel != base_rel {
        return Err(format!("relevances {inc_rel:?} != {base_rel:?}"));
    }
    let fast = top_k_cyclic(&snap, q, &TopKConfig::new(k));
    if fast.total_relevance() != inc.total_relevance() {
        return Err("top_k_cyclic disagrees".into());
    }

    // Diversified: identical set and F-value (shared greedy).
    let div_base = top_k_diversified(&snap, q, &DivConfig::new(k, lambda));
    let div_inc = m.diversified(lambda);
    if div_inc.nodes() != div_base.nodes() {
        return Err(format!("div {:?} != {:?}", div_inc.nodes(), div_base.nodes()));
    }
    if (div_inc.f_value - div_base.f_value).abs() > 1e-9 {
        return Err(format!("F {} != {}", div_inc.f_value, div_base.f_value));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn insert_only_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(5),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Insert, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn delete_only_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(5),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Delete, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn mixed_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(6),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Mixed, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn attr_mixed_streams(
        (labels, edges, attrs) in arb_attr_graph(),
        (plabels, pedges, conds) in arb_attr_pattern(),
        batches in arb_attr_ops(6),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        // Attribute-predicate patterns over graphs with initial attribute
        // tables, driven by streams that interleave SetAttr/UnsetAttr with
        // structural churn — the maintained answer must stay bit-identical
        // to the static pipeline on the final snapshot.
        let g = build_attr_graph(&labels, &edges, &attrs);
        prop_assert!(g.is_ok(), "{}", g.unwrap_err());
        let q = build_attr_pattern(&plabels, &pedges, &conds);
        prop_assert!(q.is_ok(), "{}", q.unwrap_err());
        let r = run_and_compare(&g.unwrap(), &q.unwrap(), &batches, Stream::AttrMixed, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn attr_only_streams_never_rebuild(
        (labels, edges, attrs) in arb_attr_graph(),
        (plabels, pedges, conds) in arb_attr_pattern(),
        batches in proptest::collection::vec(
            proptest::collection::vec((8u8..12, 0u32..64, 0u32..64), 1..5), 5),
        k in 1usize..5,
    ) {
        // A pure-attribute stream must be absorbed without a single full
        // rebuild (attr flips are zero edge churn) while still agreeing
        // with the static recompute.
        let g = build_attr_graph(&labels, &edges, &attrs).unwrap();
        let q = build_attr_pattern(&plabels, &pedges, &conds).unwrap();
        let mut m = DynamicMatcher::new(&g, q.clone(), IncrementalConfig::new(k)).unwrap();
        for raw in &batches {
            let delta = decode(m.graph(), raw, Stream::AttrMixed);
            m.apply(&delta).unwrap();
        }
        prop_assert_eq!(m.stats().full_rebuilds, 0);
        let snap = m.snapshot();
        let base = top_k_by_match(&snap, &q, &TopKConfig::new(k));
        prop_assert_eq!(m.top_k().nodes(), base.nodes());
    }
}
