//! Property tests for the incremental subsystem: a `DynamicMatcher`
//! maintained across random delta streams must agree with a from-scratch
//! `top_k_cyclic` / `top_k_diversified` run on the final graph — for
//! insert-only, delete-only, and mixed streams, and for streams mixing
//! attribute mutations (`SetAttr`/`UnsetAttr`) into the structural churn
//! against attribute-predicate patterns.
//!
//! The `adversarial condensation maintenance` section at the bottom
//! targets the incremental Tarjan maintenance specifically: SCC
//! split-then-remerge inside one batch, whole components tombstoned at
//! once, and attribute-driven candidacy departures inside a shared SCC
//! — each checked against a from-scratch condensation
//! (`check_maintained`) *and* the static top-k baseline, per batch.

use diversified_topk::prelude::*;
use gpm_core::config::DivConfig;
use gpm_core::{top_k_by_match, top_k_cyclic, top_k_diversified};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::{Attributes, DynGraph, GraphBuilder};
use gpm_pattern::builder::label_pattern;
use gpm_pattern::{CmpOp, Pattern, PatternBuilder, Predicate};
use proptest::prelude::*;

/// A random small labeled digraph (same shape as `properties.rs`).
fn arb_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (4usize..20).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
        (labels, edges)
    })
}

/// Per-node initial attributes: bit 0 of the flag grants `k0`, bit 1
/// grants `k1`, with the given small integer values.
type AttrSpec = Vec<(u8, u8, u8)>;

/// A random small digraph whose nodes may start with `k0`/`k1` attributes.
fn arb_attr_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>, AttrSpec)> {
    (4usize..20).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
        let attrs = proptest::collection::vec((0u8..4, 0u8..5, 0u8..5), n);
        (labels, edges, attrs)
    })
}

fn build_attr_graph(
    labels: &[u32],
    edges: &[(u32, u32)],
    attrs: &AttrSpec,
) -> Result<DiGraph, String> {
    let mut b = GraphBuilder::new();
    for (&l, &(flags, v0, v1)) in labels.iter().zip(attrs) {
        let mut a = Attributes::new();
        if flags & 1 != 0 {
            a.set("k0", v0 as i64);
        }
        if flags & 2 != 0 {
            a.set("k1", v1 as i64);
        }
        b.add_node_with_attrs(l, a);
    }
    for &(s, t) in edges {
        b.add_edge(s, t).map_err(|e| e.to_string())?;
    }
    Ok(b.build())
}

/// A small pattern over the same alphabet; node 0 is the output.
fn arb_pattern() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (1usize..5).prop_flat_map(|k| {
        let labels = proptest::collection::vec(0u32..3, k);
        let extra = proptest::collection::vec((0u32..k as u32, 0u32..k as u32), 0..k * 2);
        (labels, extra).prop_map(move |(labels, extra)| {
            let mut edges: Vec<(u32, u32)> = (1..k as u32).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|(a, b)| a != b));
            edges.sort_unstable();
            edges.dedup();
            (labels, edges)
        })
    })
}

/// Per-pattern-node attribute condition: `sel` 0 = label-only, 1 = on
/// `k0`, 2 = on `k1`; `op` selects the comparison, `t` the threshold.
type CondSpec = Vec<(u8, u8, u8)>;

/// A pattern whose nodes may carry attribute conditions over `k0`/`k1`.
fn arb_attr_pattern() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>, CondSpec)> {
    (1usize..5).prop_flat_map(|k| {
        let labels = proptest::collection::vec(0u32..3, k);
        let extra = proptest::collection::vec((0u32..k as u32, 0u32..k as u32), 0..k * 2);
        let conds = proptest::collection::vec((0u8..3, 0u8..4, 0u8..5), k);
        (labels, extra, conds).prop_map(move |(labels, extra, conds)| {
            let mut edges: Vec<(u32, u32)> = (1..k as u32).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|(a, b)| a != b));
            edges.sort_unstable();
            edges.dedup();
            (labels, edges, conds)
        })
    })
}

fn build_attr_pattern(
    plabels: &[u32],
    pedges: &[(u32, u32)],
    conds: &CondSpec,
) -> Result<Pattern, String> {
    let mut b = PatternBuilder::new();
    for (i, (&l, &(sel, op, t))) in plabels.iter().zip(conds).enumerate() {
        let pred = if sel == 0 {
            Predicate::Label(l)
        } else {
            let key = if sel == 1 { "k0" } else { "k1" };
            let op = match op {
                0 => CmpOp::Ge,
                1 => CmpOp::Lt,
                2 => CmpOp::Eq,
                _ => CmpOp::Ne,
            };
            Predicate::labeled(l, [Predicate::attr(key, op, t as i64)])
        };
        b.node(format!("u{i}"), pred);
    }
    for &(s, t) in pedges {
        b.edge(s, t).map_err(|e| e.to_string())?;
    }
    b.output(0).map_err(|e| e.to_string())?;
    b.build().map_err(|e| e.to_string())
}

/// Raw op codes decoded into a `GraphDelta` against the current graph
/// state (so deletions target real ids even after node churn).
type RawOps = Vec<(u8, u32, u32)>;

fn arb_ops(batches: usize) -> impl Strategy<Value = Vec<RawOps>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 1..5),
        batches,
    )
}

/// Raw ops whose code range includes the attribute band (`8..12`).
fn arb_attr_ops(batches: usize) -> impl Strategy<Value = Vec<RawOps>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..12, 0u32..64, 0u32..64), 1..5),
        batches,
    )
}

#[derive(Clone, Copy)]
enum Stream {
    Insert,
    Delete,
    Mixed,
    /// Structural churn with attribute mutations interleaved: raw codes in
    /// `8..12` become `SetAttr`/`UnsetAttr` on `k0`/`k1`.
    AttrMixed,
}

/// Decodes one raw batch into a valid delta for the current graph.
fn decode(g: &DynGraph, ops: &RawOps, kind: Stream) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let n = g.node_count() as u32;
    for &(code, a, b) in ops {
        if matches!(kind, Stream::AttrMixed) && code >= 8 {
            // Attribute op; targeting a tombstoned node is a legal
            // recorded no-op, so no liveness filtering is needed.
            let key = if b % 2 == 0 { "k0" } else { "k1" };
            delta = if code >= 11 {
                delta.unset_attr(a % n, key)
            } else {
                delta.set_attr(a % n, key, (b % 5) as i64)
            };
            continue;
        }
        let insert = match kind {
            Stream::Insert => true,
            Stream::Delete => false,
            Stream::Mixed | Stream::AttrMixed => code % 2 == 0,
        };
        let (a, b) = (a % n, b % n);
        if insert {
            if code >= 6 {
                delta = delta.add_node(a % 3);
            } else if a != b {
                delta = delta.add_edge(a, b);
            }
        } else if code >= 6 {
            delta = delta.remove_node(a);
        } else {
            // Target a real edge when one exists at this source.
            let t = g.successors(a).nth(b as usize % g.out_degree(a).max(1));
            delta = delta.remove_edge(a, t.unwrap_or(b));
        }
    }
    delta
}

#[allow(clippy::too_many_arguments)]
fn check_stream(
    labels: &[u32],
    edges: &[(u32, u32)],
    plabels: &[u32],
    pedges: &[(u32, u32)],
    batches: &[RawOps],
    kind: Stream,
    k: usize,
    lambda: f64,
) -> Result<(), String> {
    let g = graph_from_parts(labels, edges).map_err(|e| e.to_string())?;
    let q = label_pattern(plabels, pedges, 0).map_err(|e| e.to_string())?;
    run_and_compare(&g, &q, batches, kind, k, lambda)
}

/// Replays the batches through a `DynamicMatcher` and compares every
/// answer surface against the static pipeline on the final snapshot.
fn run_and_compare(
    g: &DiGraph,
    q: &Pattern,
    batches: &[RawOps],
    kind: Stream,
    k: usize,
    lambda: f64,
) -> Result<(), String> {
    let mut m = DynamicMatcher::new(g, q.clone(), IncrementalConfig::new(k).lambda(lambda))
        .map_err(|e| e.to_string())?;
    for raw in batches {
        let delta = decode(m.graph(), raw, kind);
        m.apply(&delta).map_err(|e| e.to_string())?;
    }
    let snap = m.snapshot();

    // Relevance ranking: exact agreement with the find-all baseline, and
    // total-relevance agreement with the early-terminating algorithm.
    let base = top_k_by_match(&snap, q, &TopKConfig::new(k));
    let inc = m.top_k();
    if inc.nodes() != base.nodes() {
        return Err(format!("nodes {:?} != {:?}", inc.nodes(), base.nodes()));
    }
    let base_rel: Vec<u64> = base.matches.iter().map(|r| r.relevance).collect();
    let inc_rel: Vec<u64> = inc.matches.iter().map(|r| r.relevance).collect();
    if inc_rel != base_rel {
        return Err(format!("relevances {inc_rel:?} != {base_rel:?}"));
    }
    let fast = top_k_cyclic(&snap, q, &TopKConfig::new(k));
    if fast.total_relevance() != inc.total_relevance() {
        return Err("top_k_cyclic disagrees".into());
    }

    // Diversified: identical set and F-value (shared greedy).
    let div_base = top_k_diversified(&snap, q, &DivConfig::new(k, lambda));
    let div_inc = m.diversified(lambda);
    if div_inc.nodes() != div_base.nodes() {
        return Err(format!("div {:?} != {:?}", div_inc.nodes(), div_base.nodes()));
    }
    if (div_inc.f_value - div_base.f_value).abs() > 1e-9 {
        return Err(format!("F {} != {}", div_inc.f_value, div_base.f_value));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn insert_only_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(5),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Insert, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn delete_only_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(5),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Delete, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn mixed_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(6),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Mixed, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn attr_mixed_streams(
        (labels, edges, attrs) in arb_attr_graph(),
        (plabels, pedges, conds) in arb_attr_pattern(),
        batches in arb_attr_ops(6),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        // Attribute-predicate patterns over graphs with initial attribute
        // tables, driven by streams that interleave SetAttr/UnsetAttr with
        // structural churn — the maintained answer must stay bit-identical
        // to the static pipeline on the final snapshot.
        let g = build_attr_graph(&labels, &edges, &attrs);
        prop_assert!(g.is_ok(), "{}", g.unwrap_err());
        let q = build_attr_pattern(&plabels, &pedges, &conds);
        prop_assert!(q.is_ok(), "{}", q.unwrap_err());
        let r = run_and_compare(&g.unwrap(), &q.unwrap(), &batches, Stream::AttrMixed, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn attr_only_streams_never_rebuild(
        (labels, edges, attrs) in arb_attr_graph(),
        (plabels, pedges, conds) in arb_attr_pattern(),
        batches in proptest::collection::vec(
            proptest::collection::vec((8u8..12, 0u32..64, 0u32..64), 1..5), 5),
        k in 1usize..5,
    ) {
        // A pure-attribute stream must be absorbed without a single full
        // rebuild (attr flips are zero edge churn) while still agreeing
        // with the static recompute.
        let g = build_attr_graph(&labels, &edges, &attrs).unwrap();
        let q = build_attr_pattern(&plabels, &pedges, &conds).unwrap();
        let mut m = DynamicMatcher::new(&g, q.clone(), IncrementalConfig::new(k)).unwrap();
        for raw in &batches {
            let delta = decode(m.graph(), raw, Stream::AttrMixed);
            m.apply(&delta).unwrap();
        }
        prop_assert_eq!(m.stats().full_rebuilds, 0);
        // The bound index never rebuilds on its own authority here:
        // attribute flips leave the alive-pair trajectory flat or
        // shrinking, so neither `Auto`'s grow-only hysteresis nor the
        // churn gate may fire. The only permitted rebuilds are forced
        // ones — a mass candidacy revival overflowing the condensation
        // maintenance region restarts the condensation (and therefore
        // the bounds folded over it) from scratch.
        prop_assert!(
            m.stats().bound_rebuilds <= m.stats().cond_rebuilds,
            "bound index rebuilt without a condensation rebuild underneath it: {} > {}",
            m.stats().bound_rebuilds, m.stats().cond_rebuilds
        );
        let snap = m.snapshot();
        let base = top_k_by_match(&snap, &q, &TopKConfig::new(k));
        prop_assert_eq!(m.top_k().nodes(), base.nodes());
    }

    #[test]
    fn bounded_pruning_never_changes_answers(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(6),
        k in 1usize..5,
    ) {
        // Maintained output bounds are a pure pruning accelerator: a
        // bounds-disabled twin consuming the same mixed stream must
        // produce bit-identical top-k answers after every batch, while
        // the bounded side's maintained per-component `h` stays equal to
        // a from-scratch refold (`check_maintained` folds
        // `BoundState::validate` into the condensation oracle). Forced
        // incremental, so no rebuild safety net hides a stale bound.
        let g = graph_from_parts(&labels, &edges).unwrap();
        let q = label_pattern(&plabels, &pedges, 0).unwrap();
        let bounded_cfg = forced(k);
        prop_assert!(bounded_cfg.bounds.enabled, "bounds are on by default");
        let mut plain_cfg = bounded_cfg.clone();
        plain_cfg.bounds.enabled = false;
        let mut bm = DynamicMatcher::new(&g, q.clone(), bounded_cfg).unwrap();
        let mut pm = DynamicMatcher::new(&g, q, plain_cfg).unwrap();
        for raw in &batches {
            let delta = decode(bm.graph(), raw, Stream::Mixed);
            bm.apply(&delta).unwrap();
            pm.apply(&delta).unwrap();
            prop_assert_eq!(bm.top_k().matches, pm.top_k().matches,
                "bound pruning changed the answer");
            bm.check_maintained();
        }
        prop_assert_eq!(pm.stats().pruned_outputs, 0, "disabled bounds never prune");
    }
}

// ---------------------------------------------------------------------
// Adversarial condensation maintenance
//
// The streams below are engineered around the incremental Tarjan
// maintenance: each scenario is the shape most likely to drift from a
// from-scratch build, and every batch runs the full differential —
// maintained condensation ≡ from-scratch (`check_maintained`) and
// incremental top-k ≡ the static baseline on a snapshot.
// ---------------------------------------------------------------------

/// Forced-incremental config: rebuild thresholds maxed so no safety net
/// can mask a maintenance bug.
fn forced(k: usize) -> IncrementalConfig {
    let mut cfg = IncrementalConfig::new(k);
    cfg.max_delta_fraction = f64::INFINITY;
    cfg.max_dirty_fraction = f64::INFINITY;
    cfg.max_cond_churn_fraction = f64::INFINITY;
    cfg
}

/// The cyclic two-node pattern A ⇄ B over alternating labels — every
/// match must sit on an alternating data cycle, which makes SCC shape
/// the whole game.
fn flip_flop() -> Pattern {
    label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap()
}

/// The full differential after one batch: maintained state against a
/// from-scratch build, incremental answer against the static baseline.
fn assert_exact(m: &DynamicMatcher, k: usize, ctx: &str) {
    m.check_maintained();
    let base = top_k_by_match(&m.snapshot(), m.pattern(), &TopKConfig::new(k));
    let inc = m.top_k();
    assert_eq!(inc.nodes(), base.nodes(), "top-k nodes diverged: {ctx}");
    let base_rel: Vec<u64> = base.matches.iter().map(|r| r.relevance).collect();
    let inc_rel: Vec<u64> = inc.matches.iter().map(|r| r.relevance).collect();
    assert_eq!(inc_rel, base_rel, "relevances diverged: {ctx}");
}

/// Two 4-cycles bridged per `bridges` (nodes 0..8), plus an untouched
/// 16-node ballast cycle (nodes 8..24) that keeps the adversarial SCC
/// under `CondPolicy::max_region_fraction` so the *incremental* split
/// and merge paths run instead of the churn fallback.
fn bridged_cycles(bridges: &[(u32, u32)]) -> DiGraph {
    let labels: Vec<u32> = (0..24).map(|i| i % 2).collect();
    let mut edges = vec![(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7), (7, 4)];
    edges.extend_from_slice(bridges);
    edges.extend((8..24).map(|i| (i, if i == 23 { 8 } else { i + 1 })));
    graph_from_parts(&labels, &edges).unwrap()
}

#[test]
fn scc_split_then_remerge_in_one_batch() {
    // One SCC: C1 (0..4) and C2 (4..8) joined by bridges 3→4 and 7→0.
    let g = bridged_cycles(&[(3, 4), (7, 0)]);
    let mut m = DynamicMatcher::new(&g, flip_flop(), forced(8)).unwrap();
    assert_exact(&m, 8, "before the toggle");
    let (ci0, cr0) = (m.stats().cond_incremental, m.stats().cond_rebuilds);

    // One batch removes both bridges (the SCC splits into the two
    // 4-cycles) and adds two *different* bridges going the other way
    // (it remerges). Net component membership is identical, but every
    // internal edge of the condensation region changed — a maintainer
    // that short-circuits on "membership unchanged" serves stale
    // reachability here.
    let toggle =
        GraphDelta::new().remove_edge(3, 4).remove_edge(7, 0).add_edge(4, 3).add_edge(0, 7);
    m.apply(&toggle).unwrap();
    assert_exact(&m, 8, "after split-then-remerge in one batch");
    assert_eq!(m.stats().cond_rebuilds, cr0, "handled without a fallback re-condensation");
    assert_eq!(m.stats().cond_incremental, ci0 + 1, "the incremental path ran");

    // And back again, for good measure.
    let untoggle =
        GraphDelta::new().remove_edge(4, 3).remove_edge(0, 7).add_edge(3, 4).add_edge(7, 0);
    m.apply(&untoggle).unwrap();
    assert_exact(&m, 8, "after toggling back");
    assert_eq!(m.stats().cond_rebuilds, cr0);
}

#[test]
fn tombstoned_component_updates_ancestor_sets() {
    // C1 → C2 through the single bridge 3→4: two separate components,
    // C1's relevant sets reach through the bridge into all of C2.
    let g = bridged_cycles(&[(3, 4)]);
    // k = 16 keeps the C1 outputs in view next to the higher-relevance
    // ballast nodes, so their relevance drop is observable.
    let mut m = DynamicMatcher::new(&g, flip_flop(), forced(16)).unwrap();
    assert_exact(&m, 16, "before the tombstones");
    let c1_relevance = |m: &DynamicMatcher| {
        m.top_k().matches.iter().filter(|r| r.node < 4).map(|r| r.relevance).max().unwrap()
    };
    let reach_through = c1_relevance(&m);
    let (ci0, cr0) = (m.stats().cond_incremental, m.stats().cond_rebuilds);

    // One batch tombstones every node of C2: its component must die
    // whole (not linger as an empty live component holding a bitset),
    // and C1's sets must shrink to C1 alone — exactly the ancestors the
    // dirty propagation has to reach.
    let delta = GraphDelta::new().remove_node(4).remove_node(5).remove_node(6).remove_node(7);
    m.apply(&delta).unwrap();
    assert_exact(&m, 16, "after tombstoning the downstream component");
    assert_eq!(m.stats().cond_rebuilds, cr0, "bounded region, no fallback");
    assert_eq!(m.stats().cond_incremental, ci0 + 1);
    let shrunk = c1_relevance(&m);
    assert!(
        shrunk < reach_through,
        "C1's relevance must drop once C2 is gone ({shrunk} vs {reach_through})"
    );
}

#[test]
fn attr_candidacy_departure_inside_shared_scc() {
    // A 6-cycle 0..6 with chord 1→4: one SCC where the chord keeps the
    // 4-cycle 0→1→4→5→0 alive even if pairs on the 2–3 arc depart.
    // Pattern node A requires `views > 10`, so candidacy is attribute-
    // driven. Ballast cycle 6..22 keeps the region bounded.
    let labels: Vec<u32> = (0..22).map(|i| i % 2).collect();
    let mut edges = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)];
    edges.extend((6..22).map(|i| (i, if i == 21 { 6 } else { i + 1 })));
    let g = graph_from_parts(&labels, &edges).unwrap();

    let mut b = PatternBuilder::new();
    b.node("A", Predicate::labeled(0, [Predicate::attr("views", CmpOp::Gt, 10i64)]));
    b.node("B", Predicate::Label(1));
    b.edge(0, 1).unwrap();
    b.edge(1, 0).unwrap();
    b.output(0).unwrap();
    let q = b.build().unwrap();

    // k = 16 covers every possible A-output (11 even nodes), so the
    // departed pair's absence and re-entry are visible in the answer.
    let mut m = DynamicMatcher::new(&g, q, forced(16)).unwrap();
    assert!(m.top_k().nodes().is_empty(), "no node carries `views` yet");

    // Mass revival: every even node becomes an A-candidate. The region
    // is everything, so this batch is allowed to re-condense.
    let mut init = GraphDelta::new();
    for v in (0..22).step_by(2) {
        init = init.set_attr(v, "views", 50i64);
    }
    m.apply(&init).unwrap();
    assert_exact(&m, 16, "after attributes land");
    assert!(!m.top_k().nodes().is_empty(), "cycles are alive");
    let (ci0, cr0) = (m.stats().cond_incremental, m.stats().cond_rebuilds);

    // Node 2 drops below the threshold: pair (A,2) leaves an SCC that
    // stays alive for everyone routed over the chord. The component
    // must shrink in place — membership, Full bitset and ancestor sets
    // all updated — while (B,3), stranded on the dead arc, cascades out
    // with it.
    m.apply(&GraphDelta::new().set_attr(2, "views", 5i64)).unwrap();
    assert_exact(&m, 16, "after the candidacy departure");
    assert!(!m.top_k().nodes().is_empty(), "the chord keeps the SCC alive");
    assert!(!m.top_k().nodes().contains(&2), "the departed output is gone");
    assert_eq!(m.stats().cond_rebuilds, cr0, "departure handled in place");
    assert_eq!(m.stats().cond_incremental, ci0 + 1);

    // Re-entry: the pair rejoins the component it left.
    m.apply(&GraphDelta::new().set_attr(2, "views", 99i64)).unwrap();
    assert_exact(&m, 16, "after the candidacy re-entry");
    assert!(m.top_k().nodes().contains(&2), "re-entered output serves again");
    assert_eq!(m.stats().cond_rebuilds, cr0);
}

/// The generated counterpart: streams biased toward cycle-edge toggles
/// (splits and remerges), attribute flips (candidacy departures and
/// re-entries) and node tombstones, over an even cycle with random
/// alternating chords plus untouched ballast. Region overflows are
/// allowed — the fallback is part of the surface under test — but every
/// batch must keep maintained ≡ from-scratch ≡ static baseline.
fn decode_adversarial(n: u32, total: u32, ops: &[(u8, u32, u32)]) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for &(code, x, y) in ops {
        let i = x % n;
        let j = {
            // A chord endpoint of opposite parity, so the edge always
            // has a pattern edge to carry it.
            let mut j = y % n;
            if (i + j).is_multiple_of(2) {
                j = (j + 1) % n;
            }
            j
        };
        match code % 8 {
            0 => delta = delta.remove_edge(i, (i + 1) % n),
            1 => delta = delta.add_edge(i, (i + 1) % n),
            2 if i != j => delta = delta.add_edge(i, j),
            3 if i != j => delta = delta.add_edge(j, i),
            4 => delta = delta.set_attr(i, "views", 50i64),
            5 => delta = delta.set_attr(i, "views", 5i64),
            6 => delta = delta.unset_attr(i, "views"),
            _ => delta = delta.remove_node(x % total),
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn adversarial_streams_keep_maintained_condensation_exact(
        half in 3u32..6,
        chords in proptest::collection::vec((0u32..12, 0u32..12), 0..4),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 1..5), 1..6),
    ) {
        let n = half * 2;
        let total = n + 16;
        let labels: Vec<u32> = (0..total).map(|i| i % 2).collect();
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for &(a, b) in &chords {
            let a = a % n;
            let mut b = b % n;
            if (a + b) % 2 == 0 {
                b = (b + 1) % n;
            }
            if a != b {
                edges.push((a, b));
            }
        }
        edges.extend((n..total).map(|i| (i, if i == total - 1 { n } else { i + 1 })));
        edges.sort_unstable();
        edges.dedup();
        let g = graph_from_parts(&labels, &edges).unwrap();

        let mut b = PatternBuilder::new();
        b.node("A", Predicate::labeled(0, [Predicate::attr("views", CmpOp::Gt, 10i64)]));
        b.node("B", Predicate::Label(1));
        b.edge(0, 1).unwrap();
        b.edge(1, 0).unwrap();
        b.output(0).unwrap();
        let q = b.build().unwrap();

        let mut m = DynamicMatcher::new(&g, q, forced(6)).unwrap();
        // Attributes land on every even node: cycles come alive.
        let mut init = GraphDelta::new();
        for v in (0..total).step_by(2) {
            init = init.set_attr(v, "views", 50i64);
        }
        m.apply(&init).unwrap();
        assert_exact(&m, 6, "after init attributes");

        for (bi, raw) in batches.iter().enumerate() {
            let delta = decode_adversarial(n, total, raw);
            m.apply(&delta).expect("decoded deltas are valid");
            assert_exact(&m, 6, &format!("after adversarial batch {bi}"));
        }
    }
}
