//! Property tests for the incremental subsystem: a `DynamicMatcher`
//! maintained across random delta streams must agree with a from-scratch
//! `top_k_cyclic` / `top_k_diversified` run on the final graph — for
//! insert-only, delete-only, and mixed streams.

use diversified_topk::prelude::*;
use gpm_core::config::DivConfig;
use gpm_core::{top_k_by_match, top_k_cyclic, top_k_diversified};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::DynGraph;
use gpm_pattern::builder::label_pattern;
use proptest::prelude::*;

/// A random small labeled digraph (same shape as `properties.rs`).
fn arb_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (4usize..20).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
        (labels, edges)
    })
}

/// A small pattern over the same alphabet; node 0 is the output.
fn arb_pattern() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (1usize..5).prop_flat_map(|k| {
        let labels = proptest::collection::vec(0u32..3, k);
        let extra = proptest::collection::vec((0u32..k as u32, 0u32..k as u32), 0..k * 2);
        (labels, extra).prop_map(move |(labels, extra)| {
            let mut edges: Vec<(u32, u32)> = (1..k as u32).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|(a, b)| a != b));
            edges.sort_unstable();
            edges.dedup();
            (labels, edges)
        })
    })
}

/// Raw op codes decoded into a `GraphDelta` against the current graph
/// state (so deletions target real ids even after node churn).
type RawOps = Vec<(u8, u32, u32)>;

fn arb_ops(batches: usize) -> impl Strategy<Value = Vec<RawOps>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 1..5),
        batches,
    )
}

#[derive(Clone, Copy)]
enum Stream {
    Insert,
    Delete,
    Mixed,
}

/// Decodes one raw batch into a valid delta for the current graph.
fn decode(g: &DynGraph, ops: &RawOps, kind: Stream) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let n = g.node_count() as u32;
    for &(code, a, b) in ops {
        let insert = match kind {
            Stream::Insert => true,
            Stream::Delete => false,
            Stream::Mixed => code % 2 == 0,
        };
        let (a, b) = (a % n, b % n);
        if insert {
            if code >= 6 {
                delta = delta.add_node(a % 3);
            } else if a != b {
                delta = delta.add_edge(a, b);
            }
        } else if code >= 6 {
            delta = delta.remove_node(a);
        } else {
            // Target a real edge when one exists at this source.
            let t = g.successors(a).nth(b as usize % g.out_degree(a).max(1));
            delta = delta.remove_edge(a, t.unwrap_or(b));
        }
    }
    delta
}

#[allow(clippy::too_many_arguments)]
fn check_stream(
    labels: &[u32],
    edges: &[(u32, u32)],
    plabels: &[u32],
    pedges: &[(u32, u32)],
    batches: &[RawOps],
    kind: Stream,
    k: usize,
    lambda: f64,
) -> Result<(), String> {
    let g = graph_from_parts(labels, edges).map_err(|e| e.to_string())?;
    let q = label_pattern(plabels, pedges, 0).map_err(|e| e.to_string())?;
    let mut m = DynamicMatcher::new(&g, q.clone(), IncrementalConfig::new(k).lambda(lambda))
        .map_err(|e| e.to_string())?;
    for raw in batches {
        let delta = decode(m.graph(), raw, kind);
        m.apply(&delta).map_err(|e| e.to_string())?;
    }
    let snap = m.snapshot();

    // Relevance ranking: exact agreement with the find-all baseline, and
    // total-relevance agreement with the early-terminating algorithm.
    let base = top_k_by_match(&snap, &q, &TopKConfig::new(k));
    let inc = m.top_k();
    if inc.nodes() != base.nodes() {
        return Err(format!("nodes {:?} != {:?}", inc.nodes(), base.nodes()));
    }
    let base_rel: Vec<u64> = base.matches.iter().map(|r| r.relevance).collect();
    let inc_rel: Vec<u64> = inc.matches.iter().map(|r| r.relevance).collect();
    if inc_rel != base_rel {
        return Err(format!("relevances {inc_rel:?} != {base_rel:?}"));
    }
    let fast = top_k_cyclic(&snap, &q, &TopKConfig::new(k));
    if fast.total_relevance() != inc.total_relevance() {
        return Err("top_k_cyclic disagrees".into());
    }

    // Diversified: identical set and F-value (shared greedy).
    let div_base = top_k_diversified(&snap, &q, &DivConfig::new(k, lambda));
    let div_inc = m.diversified(lambda);
    if div_inc.nodes() != div_base.nodes() {
        return Err(format!("div {:?} != {:?}", div_inc.nodes(), div_base.nodes()));
    }
    if (div_inc.f_value - div_base.f_value).abs() > 1e-9 {
        return Err(format!("F {} != {}", div_inc.f_value, div_base.f_value));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn insert_only_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(5),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Insert, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn delete_only_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(5),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Delete, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn mixed_streams(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(6),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_stream(&labels, &edges, &plabels, &pedges, &batches, Stream::Mixed, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}
