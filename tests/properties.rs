//! Property-based tests (proptest) over the core invariants:
//!
//! * the refinement simulation equals the naive fixpoint and satisfies the
//!   definitional simulation + maximality checks;
//! * early-terminating top-k always returns a set with the same total
//!   relevance as the find-all baseline, under both selection strategies;
//! * every bound strategy produces sound upper bounds;
//! * `δd` (Jaccard over relevant sets) is a metric;
//! * `TopKDiv` respects its 2-approximation bound against brute force.

use diversified_topk::prelude::*;
use gpm_core::config::{DivConfig, SelectionStrategy};
use gpm_core::{top_k, top_k_by_match, top_k_diversified};
use gpm_graph::builder::graph_from_parts;
use gpm_pattern::builder::label_pattern;
use gpm_ranking::bounds::{output_upper_bounds, BoundConfig, BoundStrategy};
use gpm_ranking::relevant_set::RelevantSets;
use proptest::prelude::*;

/// A random small labeled digraph.
fn arb_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (3usize..28).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..4, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 3);
        (labels, edges)
    })
}

/// A small pattern over the same alphabet; index 0 is the output and must
/// reach every node (guaranteed by a chain skeleton + extra edges).
fn arb_pattern() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (1usize..5).prop_flat_map(|k| {
        let labels = proptest::collection::vec(0u32..4, k);
        let extra = proptest::collection::vec((0u32..k as u32, 0u32..k as u32), 0..k * 2);
        (labels, extra).prop_map(move |(labels, extra)| {
            let mut edges: Vec<(u32, u32)> = (1..k as u32).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|(a, b)| a != b));
            edges.sort_unstable();
            edges.dedup();
            (labels, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_matches_naive_and_is_maximal(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
    ) {
        let g = graph_from_parts(&labels, &edges).unwrap();
        let q = label_pattern(&plabels, &pedges, 0).unwrap();
        let sim = compute_simulation(&g, &q);
        prop_assert!(gpm_simulation::naive::agrees_with_naive(&g, &q, &sim));
        prop_assert!(sim.verify_is_simulation(&g, &q));
        prop_assert!(sim.verify_is_maximum(&g, &q));
    }

    #[test]
    fn early_termination_matches_baseline(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let g = graph_from_parts(&labels, &edges).unwrap();
        let q = label_pattern(&plabels, &pedges, 0).unwrap();
        let base = top_k_by_match(&g, &q, &TopKConfig::new(k));
        for strategy in [SelectionStrategy::Optimized, SelectionStrategy::Random { seed }] {
            let mut cfg = TopKConfig::new(k);
            cfg.strategy = strategy;
            let fast = top_k(&g, &q, &cfg);
            prop_assert_eq!(fast.matches.len(), base.matches.len());
            prop_assert_eq!(fast.total_relevance(), base.total_relevance());
            // The returned relevances are the true δr multiset prefix.
            let base_rel: Vec<u64> = base.matches.iter().map(|m| m.relevance).collect();
            let fast_rel: Vec<u64> = fast.matches.iter().map(|m| m.relevance).collect();
            prop_assert_eq!(base_rel, fast_rel);
        }
    }

    #[test]
    fn bounds_are_sound(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
    ) {
        let g = graph_from_parts(&labels, &edges).unwrap();
        let q = label_pattern(&plabels, &pedges, 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let rs = RelevantSets::compute(&g, &q, &sim);
        for strat in [BoundStrategy::Global, BoundStrategy::DescLabelCount, BoundStrategy::ProductReach] {
            let b = output_upper_bounds(&g, &q, sim.space(), strat, &BoundConfig::default());
            for (i, &v) in sim.space().candidates(q.output()).iter().enumerate() {
                if let Some(d) = rs.relevance_of(v) {
                    prop_assert!(b.h_at(i) >= d, "{strat:?}: h={} < δr={d}", b.h_at(i));
                }
            }
        }
    }

    #[test]
    fn jaccard_distance_is_metric(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
    ) {
        let g = graph_from_parts(&labels, &edges).unwrap();
        let q = label_pattern(&plabels, &pedges, 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let rs = RelevantSets::compute(&g, &q, &sim);
        let n = rs.len().min(6);
        let eps = 1e-9;
        for i in 0..n {
            prop_assert!(rs.distance(i, i).abs() < eps);
            for j in 0..n {
                prop_assert!((rs.distance(i, j) - rs.distance(j, i)).abs() < eps);
                prop_assert!(rs.distance(i, j) >= -eps && rs.distance(i, j) <= 1.0 + eps);
                for l in 0..n {
                    prop_assert!(
                        rs.distance(i, j) <= rs.distance(i, l) + rs.distance(l, j) + eps
                    );
                }
            }
        }
    }

    #[test]
    fn topkdiv_two_approximation(
        (labels, edges) in arb_graph(),
        lambda in 0.0f64..1.0,
        k in 2usize..4,
    ) {
        let g = graph_from_parts(&labels, &edges).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let cfg = DivConfig::new(k, lambda);
        let approx = top_k_diversified(&g, &q, &cfg);
        let opt = gpm_core::topk_div::optimal_diversified(&g, &q, &cfg);
        prop_assert!(approx.f_value * 2.0 >= opt.f_value - 1e-9);
        prop_assert!(opt.f_value >= approx.f_value - 1e-9);
    }
}
