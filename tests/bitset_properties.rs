//! Property suite for the bitset substrate — relevant-set algebra must be
//! beyond doubt since every ranking quantity is derived from it.

use diversified_topk::graph::BitSet;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn model_of(bits: &[usize]) -> BTreeSet<usize> {
    bits.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_btreeset_model(
        a in proptest::collection::vec(0usize..200, 0..60),
        b in proptest::collection::vec(0usize..200, 0..60),
    ) {
        let (ma, mb) = (model_of(&a), model_of(&b));
        let sa = BitSet::from_iter(200, a.iter().copied());
        let sb = BitSet::from_iter(200, b.iter().copied());

        prop_assert_eq!(sa.count(), ma.len());
        prop_assert_eq!(sa.iter().collect::<Vec<_>>(), ma.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.intersection_count(&sb), ma.intersection(&mb).count());
        prop_assert_eq!(sa.union_count(&sb), ma.union(&mb).count());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));

        let mut u = sa.clone();
        let changed = u.union_with(&sb);
        prop_assert_eq!(changed, !mb.is_subset(&ma));
        prop_assert_eq!(u.count(), ma.union(&mb).count());

        let mut i = sa.clone();
        i.intersect_with(&sb);
        prop_assert_eq!(i.count(), ma.intersection(&mb).count());

        let mut d = sa.clone();
        d.difference_with(&sb);
        prop_assert_eq!(d.count(), ma.difference(&mb).count());
    }

    #[test]
    fn jaccard_axioms(
        a in proptest::collection::vec(0usize..128, 0..40),
        b in proptest::collection::vec(0usize..128, 0..40),
        c in proptest::collection::vec(0usize..128, 0..40),
    ) {
        let sa = BitSet::from_iter(128, a);
        let sb = BitSet::from_iter(128, b);
        let sc = BitSet::from_iter(128, c);
        let d = |x: &BitSet, y: &BitSet| x.jaccard_distance(y);
        prop_assert!(d(&sa, &sa).abs() < 1e-12);
        prop_assert!((d(&sa, &sb) - d(&sb, &sa)).abs() < 1e-12);
        prop_assert!(d(&sa, &sb) >= 0.0 && d(&sa, &sb) <= 1.0);
        prop_assert!(d(&sa, &sb) <= d(&sa, &sc) + d(&sc, &sb) + 1e-12);
    }

    #[test]
    fn insert_remove_roundtrip(bits in proptest::collection::vec(0usize..300, 0..80)) {
        let mut s = BitSet::new(300);
        for &b in &bits {
            s.insert(b);
        }
        for &b in &bits {
            prop_assert!(s.contains(b));
        }
        for &b in &bits {
            s.remove(b);
        }
        prop_assert!(s.is_empty());
    }
}
