//! End-to-end pipeline tests on the dataset emulators: generate a graph,
//! extract verified patterns, and run every algorithm, checking the
//! cross-algorithm agreements the paper's experiments rely on.

use diversified_topk::datagen::datasets::{amazon_like, citation_like, youtube_like, Scale};
use diversified_topk::datagen::patterns::{
    extract_pattern, pattern_suite, q1_youtube, PatternGenConfig,
};
use diversified_topk::prelude::*;
use gpm_core::config::DivConfig;
use gpm_core::{top_k_by_match, top_k_diversified, top_k_diversified_heuristic};

#[test]
fn youtube_pipeline_cyclic() {
    let g = youtube_like(Scale::Small, 5);
    let Some(q) = extract_pattern(&g, &PatternGenConfig::new(4, 8, false, 77)) else {
        panic!("no cyclic (4,8) pattern in the youtube emulator");
    };
    assert!(!q.is_dag());
    let k = 10;
    let base = top_k_by_match(&g, &q, &TopKConfig::new(k));
    let total = base.stats.total_matches.unwrap();
    assert!(total > 0);

    let fast = top_k_cyclic(&g, &q, &TopKConfig::new(k));
    assert_eq!(fast.total_relevance(), base.total_relevance());

    let nopt = top_k_cyclic(&g, &q, &TopKConfig::new(k).nopt(3));
    assert_eq!(nopt.total_relevance(), base.total_relevance());

    // MR is meaningful: between 0 and 1, and Match is always 1.
    let mr = fast.stats.match_ratio(total);
    assert!((0.0..=1.0).contains(&mr), "mr = {mr}");
    assert_eq!(base.stats.match_ratio(total), 1.0);
}

#[test]
fn citation_pipeline_dag() {
    let g = citation_like(Scale::Small, 6);
    let suite = pattern_suite(&g, (4, 6), true, 2, 55);
    assert!(!suite.is_empty(), "citation emulator must admit (4,6) DAG patterns");
    for q in &suite {
        assert!(q.is_dag());
        let base = top_k_by_match(&g, q, &TopKConfig::new(10));
        let fast = top_k_dag(&g, q, &TopKConfig::new(10));
        assert_eq!(fast.total_relevance(), base.total_relevance());
        assert_eq!(fast.matches.len(), base.matches.len());
    }
}

#[test]
fn amazon_pipeline_diversified() {
    let g = amazon_like(Scale::Small, 7);
    let Some(q) = extract_pattern(&g, &PatternGenConfig::new(4, 8, false, 99)) else {
        panic!("no cyclic (4,8) pattern in the amazon emulator");
    };
    let cfg = DivConfig::new(6, 0.5);
    let div = top_k_diversified(&g, &q, &cfg);
    let dh = top_k_diversified_heuristic(&g, &q, &cfg);
    assert_eq!(div.matches.len(), dh.matches.len());
    // Both produce valid matches of the output node.
    let sim = compute_simulation(&g, &q);
    let mu = sim.output_matches(&q);
    for m in div.matches.iter().chain(&dh.matches) {
        assert!(mu.contains(&m.node), "{} is not a match", m.node);
    }
    // TopKDiv dominates the heuristic here only on F built from exact sets;
    // both must be positive.
    assert!(div.f_value > 0.0);
    assert!(dh.f_value > 0.0);
}

#[test]
fn fig4_case_study_runs() {
    let g = youtube_like(Scale::Small, 11);
    let q1 = q1_youtube();
    let sim = compute_simulation(&g, &q1);
    let mu = sim.output_matches(&q1);
    if mu.is_empty() {
        // Possible at tiny scale; the medium-scale harness checks content.
        return;
    }
    let rel = top_k(&g, &q1, &TopKConfig::new(2));
    let div = top_k_diversified(&g, &q1, &DivConfig::new(2, 0.5));
    assert!(rel.matches.len() <= 2 && !rel.matches.is_empty());
    assert!(div.matches.len() <= 2 && !div.matches.is_empty());
    // Diversified relevance total can never exceed the relevance-optimal.
    assert!(div.matches.iter().map(|m| m.relevance).sum::<u64>() <= rel.total_relevance());
}

#[test]
fn graph_io_roundtrip_preserves_results() {
    let g = youtube_like(Scale::Small, 13);
    let bytes = gpm_graph::io::to_bytes(&g);
    let g2 = gpm_graph::io::from_bytes(&bytes).unwrap();
    let Some(q) = extract_pattern(&g, &PatternGenConfig::new(4, 8, false, 1)) else {
        panic!("pattern extraction failed");
    };
    // Attributes are not serialized, but the pattern here is label-only, so
    // results must be identical on the round-tripped topology.
    let a = top_k_cyclic(&g, &q, &TopKConfig::new(5));
    let b = top_k_cyclic(&g2, &q, &TopKConfig::new(5));
    assert_eq!(a.nodes(), b.nodes());
    assert_eq!(a.total_relevance(), b.total_relevance());
}
