//! Property tests for the streaming answer service (`gpm-serving`).
//!
//! Two satellites of the serving PR, proven over generated graphs,
//! patterns and delta streams:
//!
//! 1. **Exact notifications**: a subscription receives an update for
//!    **exactly** the batches after which the static recompute's top-k
//!    differs from its previous value — no missed updates, no spurious
//!    wakeups — and the pushed answer equals the static recompute.
//! 2. **Coalescing**: under a capacity-1 queue that is never drained, the
//!    subscriber still ends up with the latest consistent answer, with
//!    the `version` gap accounting for every skipped change and the diff
//!    rebased onto what the consumer actually saw (nothing).

use diversified_topk::prelude::*;
use gpm_core::config::DivConfig;
use gpm_core::result::AnswerDiff;
use gpm_core::{top_k_by_match, top_k_diversified};
use gpm_graph::{DynGraph, GraphBuilder};
use gpm_pattern::builder::label_pattern;
use gpm_serving::{AnswerService, NotifyMode, ServiceConfig};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (4usize..18).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
        (labels, edges)
    })
}

fn arb_pattern() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (1usize..4).prop_flat_map(|k| {
        proptest::collection::vec(0u32..3, k).prop_map(|labels| {
            let chain: Vec<(u32, u32)> = (1..labels.len() as u32).map(|i| (i - 1, i)).collect();
            (labels, chain)
        })
    })
}

type RawOps = Vec<(u8, u32, u32)>;

fn arb_ops(batches: usize) -> impl Strategy<Value = Vec<RawOps>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..12, 0u32..64, 0u32..64), 1..5),
        batches,
    )
}

/// Decodes one raw batch against the current graph (mirrors the decode in
/// `incremental_properties.rs`: structural churn plus `k0`/`k1` attribute
/// mutations in the `8..12` code band).
fn decode(g: &DynGraph, ops: &RawOps) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let n = g.node_count() as u32;
    for &(code, a, b) in ops {
        if code >= 8 {
            let key = if b % 2 == 0 { "k0" } else { "k1" };
            delta = if code >= 11 {
                delta.unset_attr(a % n, key)
            } else {
                delta.set_attr(a % n, key, (b % 5) as i64)
            };
            continue;
        }
        let (a, b) = (a % n, b % n);
        if code % 2 == 0 {
            if code >= 6 {
                delta = delta.add_node(a % 3);
            } else if a != b {
                delta = delta.add_edge(a, b);
            }
        } else if code >= 6 {
            delta = delta.remove_node(a);
        } else {
            let t = g.successors(a).nth(b as usize % g.out_degree(a).max(1));
            delta = delta.remove_edge(a, t.unwrap_or(b));
        }
    }
    delta
}

fn build_graph(labels: &[u32], edges: &[(u32, u32)]) -> Result<DiGraph, String> {
    let mut b = GraphBuilder::new();
    for (i, &l) in labels.iter().enumerate() {
        // Sprinkle initial attributes so attr ops can unset something.
        if i % 3 == 0 {
            let mut attrs = gpm_graph::Attributes::new();
            attrs.set("k0", (i % 5) as i64);
            b.add_node_with_attrs(l, attrs);
        } else {
            b.add_node(l);
        }
    }
    for &(s, t) in edges {
        b.add_edge(s, t).map_err(|e| e.to_string())?;
    }
    Ok(b.build())
}

/// Satellite 1: push notifications ≡ static-recompute change points.
fn check_exact_notifications(
    labels: &[u32],
    edges: &[(u32, u32)],
    plabels: &[u32],
    pedges: &[(u32, u32)],
    batches: &[RawOps],
    k: usize,
    lambda: f64,
) -> Result<(), String> {
    let g = build_graph(labels, edges)?;
    let q = label_pattern(plabels, pedges, 0).map_err(|e| e.to_string())?;
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let rel = svc
        .subscribe(q.clone(), IncrementalConfig::new(k).lambda(lambda), NotifyMode::Relevance)
        .map_err(|e| e.to_string())?;
    let div = svc.attach(rel.pattern(), NotifyMode::Diversified).map_err(|e| e.to_string())?;

    let mut prev_rel = rel.try_recv().ok_or("missing initial relevance answer")?.topk;
    let mut prev_div = div.try_recv().ok_or("missing initial diversified answer")?.topk;
    if prev_rel != top_k_by_match(&g, &q, &TopKConfig::new(k)).matches {
        return Err("initial answer != static".into());
    }

    for (step, raw) in batches.iter().enumerate() {
        let delta = decode(svc.registry().graph(), raw);
        let report = svc.ingest(&delta).map_err(|e| e.to_string())?;
        let snap = svc.registry().snapshot();

        let fresh_rel = top_k_by_match(&snap, &q, &TopKConfig::new(k)).matches;
        let fresh_div = top_k_diversified(&snap, &q, &DivConfig::new(k, lambda)).matches;
        for (name, sub, prev, fresh) in [
            ("relevance", &rel, &mut prev_rel, fresh_rel),
            ("diversified", &div, &mut prev_div, fresh_div),
        ] {
            match sub.try_recv() {
                None if *prev == fresh => {}
                None => return Err(format!("step {step}: missed {name} update")),
                Some(u) if *prev == fresh => {
                    return Err(format!("step {step}: spurious {name} wakeup: {u:?}"))
                }
                Some(u) => {
                    if u.topk != fresh {
                        return Err(format!("step {step}: {name} answer != static recompute"));
                    }
                    if u.seq != report.seq {
                        return Err(format!("step {step}: {name} update mislabeled"));
                    }
                    if u.diff != AnswerDiff::between(prev, &fresh) {
                        return Err(format!("step {step}: {name} diff wrong"));
                    }
                    if sub.try_recv().is_some() {
                        return Err(format!("step {step}: duplicate {name} update"));
                    }
                    *prev = fresh;
                }
            }
        }
    }
    Ok(())
}

/// Satellite 2: overflow coalescing still lands on the latest answer.
fn check_coalescing(
    labels: &[u32],
    edges: &[(u32, u32)],
    plabels: &[u32],
    pedges: &[(u32, u32)],
    batches: &[RawOps],
    k: usize,
) -> Result<(), String> {
    let g = build_graph(labels, edges)?;
    let q = label_pattern(plabels, pedges, 0).map_err(|e| e.to_string())?;
    let mut svc =
        AnswerService::new(&g, ServiceConfig { queue_capacity: 1, ..ServiceConfig::default() });
    let sub = svc
        .subscribe(q.clone(), IncrementalConfig::new(k), NotifyMode::Relevance)
        .map_err(|e| e.to_string())?;

    // Never drain; count the oracle's change points.
    let mut prev = top_k_by_match(&g, &q, &TopKConfig::new(k)).matches;
    let mut changes = 0u64;
    for raw in batches {
        let delta = decode(svc.registry().graph(), raw);
        svc.ingest(&delta).map_err(|e| e.to_string())?;
        let fresh = top_k_by_match(&svc.registry().snapshot(), &q, &TopKConfig::new(k)).matches;
        if fresh != prev {
            changes += 1;
            prev = fresh;
        }
    }

    if sub.pending() != 1 {
        return Err(format!("queue holds {} updates, want 1", sub.pending()));
    }
    if sub.coalesced() != changes {
        return Err(format!("coalesced {} of {changes} changes", sub.coalesced()));
    }
    let u = sub.try_recv().ok_or("queue empty")?;
    if u.topk != prev {
        return Err("surviving update is not the latest consistent answer".into());
    }
    if u.version != 1 + changes {
        return Err(format!("version {} does not account for {changes} skips", u.version));
    }
    // The consumer never saw anything: the rebased diff must reconcile
    // the empty view with the final answer in one step.
    if u.diff != AnswerDiff::between(&[], &u.topk) {
        return Err("diff not rebased onto the consumer's (empty) view".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn notifications_are_exactly_the_static_change_points(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(5),
        k in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let r = check_exact_notifications(&labels, &edges, &plabels, &pedges, &batches, k, lambda);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn coalescing_under_overflow_delivers_the_latest_answer(
        (labels, edges) in arb_graph(),
        (plabels, pedges) in arb_pattern(),
        batches in arb_ops(6),
        k in 1usize..4,
    ) {
        let r = check_coalescing(&labels, &edges, &plabels, &pedges, &batches, k);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}
