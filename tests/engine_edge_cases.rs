//! Edge-case integration tests for the early-termination engine: shapes
//! and inputs that stress unusual paths (self-loops, multiple SCCs,
//! saturated k, disconnected patterns with non-root outputs, duplicate
//! labels).

use diversified_topk::prelude::*;
use gpm_core::config::SelectionStrategy;
use gpm_core::{top_k, top_k_by_match};
use gpm_graph::builder::graph_from_parts;
use gpm_pattern::builder::label_pattern;

fn assert_agrees(g: &DiGraph, q: &Pattern, k: usize) {
    let base = top_k_by_match(g, q, &TopKConfig::new(k));
    for strat in [SelectionStrategy::Optimized, SelectionStrategy::Random { seed: 5 }] {
        let mut cfg = TopKConfig::new(k);
        cfg.strategy = strat;
        let fast = top_k(g, q, &cfg);
        assert_eq!(fast.total_relevance(), base.total_relevance(), "{strat:?}");
        assert_eq!(fast.matches.len(), base.matches.len(), "{strat:?}");
    }
}

#[test]
fn pattern_self_loop() {
    // Pattern node with a self loop: only data nodes on a same-label cycle
    // qualify.
    let g = graph_from_parts(&[0, 0, 0, 1], &[(0, 1), (1, 0), (1, 2), (0, 3)]).unwrap();
    let q = label_pattern(&[0], &[(0, 0)], 0).unwrap();
    assert_agrees(&g, &q, 3);
    let r = top_k(&g, &q, &TopKConfig::new(3));
    let nodes = r.nodes();
    assert!(nodes.contains(&0) && nodes.contains(&1));
    assert!(!nodes.contains(&2), "node 2 has no 0-labeled successor");
}

#[test]
fn two_disjoint_pattern_cycles() {
    // Q: A* → (B ⇄ C), A → (D ⇄ E): two separate nontrivial SCCs below uo.
    let q = label_pattern(&[0, 1, 2, 3, 4], &[(0, 1), (1, 2), (2, 1), (0, 3), (3, 4), (4, 3)], 0)
        .unwrap();
    // Data: one node satisfying both cycles, one satisfying only the first.
    let g = graph_from_parts(
        &[0, 1, 2, 3, 4, 0],
        &[
            (0, 1),
            (1, 2),
            (2, 1),
            (0, 3),
            (3, 4),
            (4, 3),
            (5, 1), // node 5 reaches only the B⇄C cycle
        ],
    )
    .unwrap();
    assert_agrees(&g, &q, 2);
    let r = top_k(&g, &q, &TopKConfig::new(2));
    assert_eq!(r.nodes(), vec![0], "node 5 lacks the D⇄E branch");
    assert_eq!(r.matches[0].relevance, 4);
}

#[test]
fn k_zero_and_k_saturated() {
    let g = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (2, 3)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let r0 = top_k(&g, &q, &TopKConfig::new(0));
    assert!(r0.matches.is_empty());
    let r_all = top_k(&g, &q, &TopKConfig::new(100));
    assert_eq!(r_all.matches.len(), 2);
}

#[test]
fn duplicate_labels_in_pattern() {
    // Pattern A → B, A → B' (same label): one b-child can serve both roles.
    let g = graph_from_parts(&[0, 1, 0], &[(0, 1)]).unwrap();
    let q = label_pattern(&[0, 1, 1], &[(0, 1), (0, 2)], 0).unwrap();
    assert_agrees(&g, &q, 2);
    let r = top_k(&g, &q, &TopKConfig::new(2));
    assert_eq!(r.nodes(), vec![0]);
    assert_eq!(r.matches[0].relevance, 1, "node 1 counted once in R");
}

#[test]
fn non_root_output_inside_cycle() {
    // Output on the cycle itself: matches share the cycle's relevant set.
    let g = graph_from_parts(&[1, 2, 1, 2], &[(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
    let q = label_pattern(&[1, 2], &[(0, 1), (1, 0)], 0).unwrap();
    assert_agrees(&g, &q, 4);
    let r = top_k(&g, &q, &TopKConfig::new(4));
    assert_eq!(r.matches.len(), 2);
    for m in &r.matches {
        assert_eq!(m.relevance, 2, "each 2-cycle reaches both of its nodes");
    }
}

#[test]
fn deep_chain_pattern() {
    // A 6-deep chain pattern over a 7-layer graph exercises rank-by-rank
    // propagation.
    let labels: Vec<u32> = (0..7u32).collect();
    let edges: Vec<(u32, u32)> = (0..6u32).map(|i| (i, i + 1)).collect();
    let g = graph_from_parts(&labels, &edges).unwrap();
    let q = label_pattern(&labels, &edges, 0).unwrap();
    assert_agrees(&g, &q, 1);
    let r = top_k(&g, &q, &TopKConfig::new(1));
    assert_eq!(r.matches[0].relevance, 6);
}

#[test]
fn nopt_batch_divisor_variants() {
    let g =
        graph_from_parts(&[0, 0, 0, 1, 1, 1], &[(0, 3), (0, 4), (0, 5), (1, 4), (1, 5), (2, 5)])
            .unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let base = top_k_by_match(&g, &q, &TopKConfig::new(2));
    for divisor in [1, 2, 8, 1000] {
        let mut cfg = TopKConfig::new(2).nopt(divisor as u64);
        cfg.random_batch_divisor = divisor;
        let fast = top_k(&g, &q, &cfg);
        assert_eq!(fast.total_relevance(), base.total_relevance(), "divisor {divisor}");
    }
}
