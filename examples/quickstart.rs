//! Quickstart: the paper's running example (Fig. 1) end to end.
//!
//! Builds the collaboration network, issues the "find PMs who supervised
//! both DBs and PRGs …" pattern, and compares plain top-k, diversified
//! top-k and the full match set.
//!
//! Run with: `cargo run --example quickstart`

use diversified_topk::datagen::{fig1_graph, fig1_pattern};
use diversified_topk::prelude::*;

fn main() {
    let g = fig1_graph();
    let q = fig1_pattern();
    println!(
        "graph: {} nodes / {} edges;  pattern: {} nodes / {} edges (cyclic: {})",
        g.node_count(),
        g.edge_count(),
        q.node_count(),
        q.edge_count(),
        !q.is_dag()
    );

    // The traditional result: the whole simulation relation.
    let sim = compute_simulation(&g, &q);
    println!("\n|M(Q,G)| = {} pairs — the excessive traditional answer", sim.len());
    let mu = sim.output_matches(&q);
    println!(
        "Mu(Q,G,PM) = {:?} — the revised output-node answer",
        mu.iter().map(|&v| g.display(v)).collect::<Vec<_>>()
    );

    // Top-2 by relevance (early-terminating TopK).
    let top = top_k_cyclic(&g, &q, &TopKConfig::new(2));
    println!("\ntop-2 by relevance δr (early termination: {}):", top.stats.early_terminated);
    for m in &top.matches {
        println!("  {:4}  δr = {}", g.display(m.node), m.relevance);
    }
    println!(
        "  inspected {} of {} candidate matches",
        top.stats.inspected_matches, top.stats.output_candidates
    );

    // Diversified top-2 across the λ spectrum.
    println!("\ndiversified top-2 (TopKDiv) across λ:");
    for lambda in [0.0, 0.25, 0.5, 1.0] {
        let div = top_k_diversified(&g, &q, &DivConfig::new(2, lambda));
        let names: Vec<String> = div.nodes().iter().map(|&v| g.display(v)).collect();
        println!("  λ = {lambda:4}: {names:?}  F = {:.4}", div.f_value);
    }

    // The early-terminating diversified heuristic.
    let dh = top_k_diversified_heuristic(&g, &q, &DivConfig::new(2, 0.5));
    let names: Vec<String> = dh.nodes().iter().map(|&v| g.display(v)).collect();
    println!("\nTopKDH (λ = 0.5): {names:?}  F = {:.4}", dh.f_value);
}
