//! Telemetry dump: the observability surface of the serving stack.
//!
//! The other examples show *what* the service answers; this one shows
//! **how it spent its time doing so**. A service (telemetry is on by
//! default at the serving tier) ingests a burst of update batches, then
//! we read back the three observability surfaces the stack maintains:
//!
//! 1. the **flight recorder** — a bounded ring of recent batch traces
//!    plus the over-threshold ones; the slowest batch is printed as its
//!    span tree (ingest → apply → replay → refresh → prepare/extract →
//!    notify), each span tagged with the worker thread that ran it;
//! 2. the **phase histograms** — per-phase latency digests
//!    (p50/p99/max) distilled from the same spans, plus the delta-log
//!    fsync cost from a checkpoint;
//! 3. the **exposition endpoints** — the Prometheus-style `render()`
//!    and the JSON control-plane dump, here pulled through a live
//!    `ServiceHandle` exactly as an admin endpoint would.
//!
//! ```text
//! cargo run --release --example telemetry_dump
//! ```

use diversified_topk::datagen::synthetic::{synthetic_graph, SyntheticConfig};
use diversified_topk::datagen::update_stream::{update_stream, UpdateStreamConfig};
use diversified_topk::pattern::builder::label_pattern;
use diversified_topk::prelude::*;
use diversified_topk::telemetry::names;

fn main() {
    let g = synthetic_graph(&SyntheticConfig::paper(2_000, 8_000, 42));
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    assert!(svc.telemetry().enabled(), "serving telemetry is on by default");

    // Two live subscriptions so the notify fan-out has work to account.
    let managers = svc
        .subscribe(
            label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap(),
            IncrementalConfig::new(3),
            NotifyMode::Relevance,
        )
        .unwrap();
    let qa = svc
        .subscribe(
            label_pattern(&[0, 3, 2], &[(0, 1), (1, 2), (2, 0)], 0).unwrap(),
            IncrementalConfig::new(3).lambda(0.3),
            NotifyMode::Diversified,
        )
        .unwrap();
    managers.try_recv().unwrap();
    qa.try_recv().unwrap();

    println!("── ingesting 12 batches of 40 ops through the instrumented path");
    for delta in update_stream(&g, &UpdateStreamConfig::new(12, 40, 7)) {
        svc.ingest(&delta).unwrap();
    }

    // A checkpoint gives the fsync histogram its samples.
    let path = std::env::temp_dir().join(format!("telemetry_dump_{}.jsonl", std::process::id()));
    svc.save_log(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // 1. Flight recorder: the slowest batch seen, as a span tree.
    let recorder = svc.telemetry().recorder();
    println!(
        "\n── flight recorder: {} recent trace(s), {} over-threshold",
        recorder.recent().len(),
        recorder.slow().len()
    );
    if let Some(t) = recorder.slowest() {
        println!("slowest batch (seq {}, {:.2} ms):", t.seq, t.total_ns as f64 / 1e6);
        print!("{}", t.render());
    }

    // 2. Phase digests from the latency histograms the spans fed.
    println!("\n── phase latency digests");
    let snap = svc.telemetry().metrics().snapshot();
    for phase in names::PHASES {
        if let Some(h) = snap.histogram(&names::phase(phase)) {
            if h.count > 0 {
                println!(
                    "   {:<8} n={:<4} p50={:.3}ms p99={:.3}ms max={:.3}ms",
                    phase,
                    h.count,
                    h.p50_ns() as f64 / 1e6,
                    h.p99_ns() as f64 / 1e6,
                    h.max_ns as f64 / 1e6
                );
            }
        }
    }
    if let Some(h) = snap.histogram(names::LOG_FSYNC_SECONDS) {
        println!("   fsync    n={:<4} max={:.3}ms", h.count, h.max_ns as f64 / 1e6);
    }

    // 3a. Prometheus-style exposition (bucket lines elided for brevity —
    // a scraper gets them all).
    println!("\n── render() — counters, gauges, histogram summaries");
    for line in svc.telemetry().render().lines().filter(|l| !l.contains("_bucket{")) {
        println!("   {line}");
    }

    // 3b. The JSON control-plane dump, pulled through a running service
    // loop the way an admin endpoint would.
    let handle = ServiceHandle::spawn(svc);
    handle.ingest(GraphDelta::new().add_node(0).add_edge(0, 1)).unwrap();
    let dump = handle.telemetry_dump();
    println!("\n── telemetry_dump() via ServiceHandle: {} bytes of JSON", dump.len());
    assert!(dump.contains("\"metrics\":{") && dump.contains("\"flight_recorder\":{"));
    handle.shutdown();
}
