//! Multi-query serving: one evolving graph, many registered patterns.
//!
//! A serving system rarely answers a single query shape. This example
//! registers several patterns from the paper's domain (a collaboration
//! network) in one `PatternRegistry` — including an **attribute-predicate**
//! pattern (senior managers, filtered on an `experience` attribute the
//! stream mutates with `SetAttr` deltas) — replays a generated update
//! stream through it, registers another pattern mid-stream and deregisters
//! one, while every answer stays identical to a from-scratch recompute.
//!
//! ```text
//! cargo run --release --example multi_pattern_serving
//! ```

use diversified_topk::datagen::synthetic::{synthetic_graph, SyntheticConfig};
use diversified_topk::datagen::update_stream::{update_stream, UpdateStreamConfig};
use diversified_topk::pattern::builder::label_pattern;
use diversified_topk::prelude::*;

// The synthetic generator's 15-label alphabet, read as job titles.
const PM: u32 = 0; // project manager (output role)
const DB: u32 = 1; // database developer
const PRG: u32 = 2; // programmer
const ST: u32 = 3; // software tester

fn show(reg: &PatternRegistry, names: &[(PatternId, &str)]) {
    for &(id, name) in names {
        let Some(top) = reg.top_k(id) else {
            println!("   {name:<22} (deregistered)");
            continue;
        };
        let ranked: Vec<String> =
            top.matches.iter().map(|r| format!("v{}(δr={})", r.node, r.relevance)).collect();
        println!(
            "   {name:<22} top-{}: [{}]  Cuo={}",
            top.matches.len(),
            ranked.join(", "),
            reg.normalizer(id).unwrap()
        );
    }
}

fn main() {
    // A paper-style cyclic collaboration network.
    let g = synthetic_graph(&SyntheticConfig::paper(2_000, 8_000, 42));
    let mut reg = PatternRegistry::new(&g);
    println!(
        "collaboration network: {} live nodes, {} edges, {} labels in use",
        reg.graph().live_node_count(),
        reg.graph().edge_count(),
        reg.label_histogram().len()
    );
    println!(
        "shared candidate index: {} PMs, {} DBs, {} PRGs, {} STs\n",
        reg.candidates_for_label(PM),
        reg.candidates_for_label(DB),
        reg.candidates_for_label(PRG),
        reg.candidates_for_label(ST)
    );

    // Three subscriber queries over the same graph.
    let managers = reg
        .register(
            label_pattern(&[PM, DB, PRG], &[(0, 1), (1, 2)], 0).unwrap(),
            IncrementalConfig::new(3),
        )
        .unwrap();
    let db_leads = reg
        .register(label_pattern(&[DB, PRG], &[(0, 1)], 0).unwrap(), IncrementalConfig::new(3))
        .unwrap();
    let qa_loops = reg
        .register(
            label_pattern(&[PM, ST, PRG], &[(0, 1), (1, 2), (2, 0)], 0).unwrap(),
            IncrementalConfig::new(3).lambda(0.3),
        )
        .unwrap();
    // An attribute-predicate pattern: senior managers (experience ≥ 5
    // years) leading a DB developer. Nobody carries the attribute yet —
    // the stream's SetAttr deltas will create (and destroy) the matches.
    let seniors = {
        let mut b = PatternBuilder::new();
        b.node(
            "senior PM",
            Predicate::labeled(PM, [Predicate::attr("experience", CmpOp::Ge, 5i64)]),
        );
        b.node("DB", Predicate::Label(DB));
        b.edge_by_name("senior PM", "DB").unwrap();
        b.output(0).unwrap();
        reg.register(b.build().unwrap(), IncrementalConfig::new(3)).unwrap()
    };
    let mut names = vec![
        (managers, "managers PM→DB→PRG"),
        (db_leads, "db leads DB→PRG"),
        (qa_loops, "qa loops PM→ST→PRG→PM"),
        (seniors, "seniors PM[exp≥5]→DB"),
    ];

    println!("── initial answers ({} patterns registered)", reg.len());
    show(&reg, &names);

    // Attribute deltas flow through the same apply() as structural ones:
    // seniority arriving on a few PMs creates matches incrementally (no
    // rebuild — attr flips are zero edge churn), and an attr batch on a
    // key no pattern mentions is pruned wholesale by the interest index.
    let pms: Vec<_> = reg.graph().nodes_with_label(PM).take(3).collect();
    let mut promote = GraphDelta::new();
    for (i, &pm) in pms.iter().enumerate() {
        promote = promote.set_attr(pm, "experience", 3 + 2 * i as i64);
    }
    let touched = reg.apply(&promote).unwrap();
    println!(
        "\n── promoted {} PMs (experience 3/5/7): {} pattern(s) touched, {} answer(s) moved",
        pms.len(),
        touched.len(),
        touched.iter().filter(|c| c.changed()).count()
    );
    show(&reg, &names);
    let skipped_before = reg.stats().ops_skipped;
    reg.apply(&GraphDelta::new().set_attr(pms[0], "office", 42i64)).unwrap();
    println!(
        "   an `office` attr batch touches nobody: {} fan-out skips added",
        reg.stats().ops_skipped - skipped_before
    );

    // Replay churn through the shared graph: every batch is applied once
    // and fanned out to all registered patterns.
    let stream = update_stream(&g, &UpdateStreamConfig::new(6, 40, 7));
    for (i, delta) in stream.iter().enumerate() {
        reg.apply(delta).unwrap();

        if i == 2 {
            // A new subscriber arrives mid-stream; it answers as if built
            // from the current snapshot.
            let testers = reg
                .register(label_pattern(&[ST], &[], 0).unwrap(), IncrementalConfig::new(3))
                .unwrap();
            names.push((testers, "testers ST"));
            println!("\n── batch {} applied; registered 'testers' mid-stream", i + 1);
            show(&reg, &names);
        }
        if i == 4 {
            // One subscriber leaves; its state is dropped, nobody else
            // notices.
            reg.deregister(db_leads);
            println!("\n── batch {} applied; deregistered 'db leads'", i + 1);
            show(&reg, &names);
        }
    }

    println!("\n── final answers (graph v{})", reg.graph().version());
    show(&reg, &names);

    // Diversified answers come from the same maintained state.
    let div = reg.top_k_diversified(managers).unwrap();
    println!("\n   diversified managers (λ=0.5): {:?}  F = {:.3}", div.nodes(), div.f_value);

    let s = reg.stats();
    println!(
        "\nmaintenance: {} batches; {} replays + {} skips across {} patterns \
         (shared-index hit rate {:.1}%); last batch touched {} patterns",
        s.batches,
        s.ops_replayed,
        s.ops_skipped,
        reg.len(),
        100.0 * s.shared_index_hit_rate(),
        s.last_patterns_touched,
    );
}
