//! A collaboration network evolving over time, with the top-k answer
//! maintained incrementally across update batches.
//!
//! Starts from the paper's Fig. 1 network (top-2 project managers by
//! "social impact" are PM2 and PM3, total δr = 14) and replays the kind of
//! churn a real social network sees — people joining, links forming,
//! people leaving — while `DynamicMatcher` keeps the answer fresh at cost
//! proportional to each delta.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use diversified_topk::datagen::{fig1_graph, fig1_pattern};
use diversified_topk::prelude::*;

fn show(title: &str, top: &TopKResult, m: &mut DynamicMatcher) {
    // Decode maintained node ids back to Fig. 1 display names where the
    // node predates the stream (fresh hires get synthetic names).
    let base = fig1_graph();
    let name = |v: NodeId| -> String {
        base.name(v).map(str::to_owned).unwrap_or_else(|| format!("new#{v}"))
    };
    println!("── {title}");
    {
        let g = m.graph();
        println!("   graph v{}: {} nodes, {} edges", g.version(), g.node_count(), g.edge_count());
    }
    let ranked: Vec<String> =
        top.matches.iter().map(|r| format!("{} (δr={})", name(r.node), r.relevance)).collect();
    println!(
        "   top-{}: [{}]  (total δr = {})",
        ranked.len(),
        ranked.join(", "),
        top.total_relevance()
    );
    let div = m.top_k_diversified();
    let div_names: Vec<String> = div.matches.iter().map(|r| name(r.node)).collect();
    println!("   diversified (λ=0.5): [{}]  F = {:.3}\n", div_names.join(", "), div.f_value);
}

fn main() {
    let g = fig1_graph();
    let q = fig1_pattern();
    println!(
        "Fig. 1 collaboration network: {} nodes, {} edges; pattern ({}, {})\n",
        g.node_count(),
        g.edge_count(),
        q.node_count(),
        q.edge_count()
    );

    let mut m = DynamicMatcher::new(&g, q, IncrementalConfig::new(2).lambda(0.5))
        .expect("Fig. 1 pattern is maintainable");
    let initial = m.top_k();
    assert_eq!(initial.total_relevance(), 14, "the paper's Example 3 numbers");
    show("initial network (paper Example 3)", &initial, &mut m);

    // Batch 1: PM1's group staffs up — DB1 starts reviewing PRG4's work,
    // giving PM1's cone extra reach.
    let db1 = g.node_by_name("DB1").unwrap();
    let prg4 = g.node_by_name("PRG4").unwrap();
    let top = m.apply(&GraphDelta::new().add_edge(db1, prg4)).unwrap();
    show("DB1 starts collaborating with PRG4", &top, &mut m);

    // Batch 2: a new hire joins PM1's group: a tester reporting to both
    // DB1 and PRG1 (labels::ST = 3).
    let prg1 = g.node_by_name("PRG1").unwrap();
    let new_st = g.node_count() as NodeId; // ids are dense: first new node
    let top = m
        .apply(&GraphDelta::new().add_node(3).add_edge(db1, new_st).add_edge(prg1, new_st))
        .unwrap();
    show("a new tester joins PM1's group", &top, &mut m);

    // Batch 3: DB2 leaves the company — the shared 4-cycle that powered
    // PM2/PM3/PM4 loses a member, and their groups collapse.
    let db2 = g.node_by_name("DB2").unwrap();
    let top = m.apply(&GraphDelta::new().remove_node(db2)).unwrap();
    show("DB2 leaves the company", &top, &mut m);

    let stats = m.stats();
    println!(
        "maintenance: {} batches, {} incremental, {} full rebuilds, {} relevant sets recomputed",
        stats.applies, stats.incremental_applies, stats.full_rebuilds, stats.sets_recomputed
    );
    let _ = new_st;
}
