//! Expert search on a larger collaboration network.
//!
//! The paper's motivating scenario (Example 1) at a realistic size: a
//! synthetic organization with supervision edges, searching for project
//! managers whose teams span database developers, programmers and testers.
//! Demonstrates the efficiency gap between the `Match` baseline and the
//! early-terminating `TopK`, and the effect of the `nopt` ablation.
//!
//! Run with: `cargo run --release --example collaboration_network`

use diversified_topk::datagen::synthetic::{synthetic_graph, SyntheticConfig};
use diversified_topk::prelude::*;
use std::time::Instant;

fn main() {
    // A 20k-person organization; labels play the role of job titles.
    let g = synthetic_graph(&SyntheticConfig::paper(20_000, 60_000, 42));
    println!("organization: {} people, {} supervision edges", g.node_count(), g.edge_count());

    // PM(0) supervises DB(1) and PRG(2); DB and PRG collaborate both ways;
    // both supervise an ST(3) — the Fig. 1 shape on the synthetic alphabet.
    let mut b = PatternBuilder::new();
    b.node("PM", Predicate::Label(0));
    b.node("DB", Predicate::Label(1));
    b.node("PRG", Predicate::Label(2));
    b.node("ST", Predicate::Label(3));
    for (f, t) in
        [("PM", "DB"), ("PM", "PRG"), ("DB", "PRG"), ("PRG", "DB"), ("DB", "ST"), ("PRG", "ST")]
    {
        b.edge_by_name(f, t).unwrap();
    }
    b.output_by_name("PM").unwrap();
    let q = b.build().unwrap();

    let k = 10;

    let t = Instant::now();
    let base = top_k_by_match(&g, &q, &TopKConfig::new(k));
    let match_time = t.elapsed();
    let total = base.stats.total_matches.unwrap_or(0);
    println!(
        "\nMatch baseline: |Mu| = {total} PM matches, top-{k} total δr = {}",
        base.total_relevance()
    );
    println!("  time: {match_time:?} (computes and ranks everything)");

    for (name, cfg) in [
        ("TopK (optimized)", TopKConfig::new(k)),
        ("TopKnopt (random Sc)", TopKConfig::new(k).nopt(7)),
    ] {
        let t = Instant::now();
        let r = top_k_cyclic(&g, &q, &cfg);
        let dt = t.elapsed();
        println!(
            "{name}: total δr = {}, time {dt:?}, inspected {}/{} (MR = {:.2}), early-terminated: {}",
            r.total_relevance(),
            r.stats.inspected_matches,
            total,
            r.stats.match_ratio(total),
            r.stats.early_terminated,
        );
        assert_eq!(r.total_relevance(), base.total_relevance(), "same answer quality");
    }

    // Who are the top experts?
    let r = top_k_cyclic(&g, &q, &TopKConfig::new(5));
    println!("\ntop-5 project managers by team reach:");
    for m in &r.matches {
        println!("  person #{:<6} δr = {}", m.node, m.relevance);
    }
}
