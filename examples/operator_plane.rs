//! Operator plane: the served observability surface, self-scraped.
//!
//! The CI serving-smoke target. A live service runs behind a
//! [`ServiceHandle`] loop with the [`AdminServer`] bound on an ephemeral
//! port and the sampled [`Auditor`] watching in the background — then
//! this process turns around and scrapes **itself** over plain TCP,
//! exactly as a Prometheus scraper or an orchestrator probe would:
//!
//! 1. `GET /metrics` must parse under the strict exposition parser and
//!    carry the serving counters, build info, and per-pattern SLOs;
//! 2. `GET /healthz` must report a ready service with every component
//!    probe present;
//! 3. `GET /traces/recent` must hold the ingested batches.
//!
//! Any violation panics, failing the smoke with a nonzero exit.
//!
//! ```text
//! cargo run --release --example operator_plane
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use diversified_topk::datagen::synthetic::{synthetic_graph, SyntheticConfig};
use diversified_topk::datagen::update_stream::{update_stream, UpdateStreamConfig};
use diversified_topk::pattern::builder::label_pattern;
use diversified_topk::prelude::*;
use diversified_topk::telemetry::exposition::{self, family};
use diversified_topk::telemetry::names;

/// One GET over a fresh connection: `(status, body)`.
fn scrape(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin port");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map_or(String::new(), |(_, b)| b.to_string());
    (status, body)
}

fn main() {
    let g = synthetic_graph(&SyntheticConfig::paper(2_000, 8_000, 42));
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let managers = svc
        .subscribe(
            label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap(),
            IncrementalConfig::new(3),
            NotifyMode::Relevance,
        )
        .unwrap();
    let qa = svc
        .subscribe(
            label_pattern(&[0, 3, 2], &[(0, 1), (1, 2), (2, 0)], 0).unwrap(),
            IncrementalConfig::new(3).lambda(0.3),
            NotifyMode::Diversified,
        )
        .unwrap();
    managers.try_recv().unwrap();
    qa.try_recv().unwrap();

    let handle = ServiceHandle::spawn(svc);
    let admin = AdminServer::bind("127.0.0.1:0", handle.controller()).expect("bind admin plane");
    let addr = admin.local_addr();
    let _auditor = Auditor::spawn(
        handle.controller(),
        AuditorConfig { every_batches: 4, interval: Duration::from_millis(20) },
    );
    println!("── admin plane listening on http://{addr}");

    let batches = 12usize;
    println!("── ingesting {batches} batches of 40 ops while serving scrapes");
    for delta in update_stream(&g, &UpdateStreamConfig::new(batches, 40, 7)) {
        handle.ingest(delta).unwrap();
    }

    // 1. /metrics under the strict parser.
    let (status, body) = scrape(addr, "/metrics");
    assert_eq!(status, 200, "/metrics status");
    let families =
        exposition::parse(&body).unwrap_or_else(|e| panic!("exposition does not parse: {e}"));
    let served_batches = family(&families, names::SERVING_BATCHES)
        .and_then(|f| f.sample_with(&[]))
        .expect("gpm_serving_batches_total scraped")
        .value;
    assert_eq!(served_batches, batches as f64, "every ingested batch counted");
    assert!(family(&families, names::BUILD_INFO).is_some(), "build info exported");
    for pattern in ["pattern#0", "pattern#1"] {
        let slo = family(&families, names::SLO_GOOD)
            .and_then(|f| f.sample_with(&[("pattern", pattern)]))
            .unwrap_or_else(|| panic!("{pattern} has no SLO counters"));
        println!("   {pattern}: {} notifies within objective", slo.value);
    }
    println!("── /metrics: {} families parse strictly", families.len());

    // 2. /healthz: ready, all probes present.
    let (status, health) = scrape(addr, "/healthz");
    assert_eq!(status, 200, "/healthz status ({health})");
    assert!(health.starts_with("{\"status\":\"ready\""), "service not ready: {health}");
    for component in ["loop", "delta_log", "subscriptions", "slo", "audit", "reach"] {
        assert!(health.contains(&format!("\"name\":\"{component}\"")), "{component} missing");
    }
    println!("── /healthz: ready, 6 component probes reporting");

    // 3. The flight recorder, served.
    let (status, traces) = scrape(addr, "/traces/recent");
    assert_eq!(status, 200, "/traces/recent status");
    assert!(
        traces.contains(&format!("\"seq\":{batches}")),
        "newest batch missing from the served trace ring"
    );
    println!("── /traces/recent: trace ring holds the newest batch");

    admin.shutdown();
    drop(handle);
    println!("── operator plane smoke: OK");
}
