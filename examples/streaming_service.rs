//! Streaming service: push-model serving over an evolving graph.
//!
//! The multi-pattern examples *pull* — they call `apply` and read the
//! fresh answers. This example runs the full **push** stack instead: an
//! `AnswerService` on its own loop thread ingests update batches into a
//! replayable delta log, while subscribers — a relevance watcher and a
//! diversified watcher — block on their queues from a consumer thread and
//! are woken **exactly** when their top-k materially changes. Mid-stream
//! a late joiner recovers from the serialized log and converges on the
//! same versioned answers, and `query_at` rewinds the answer timeline.
//!
//! ```text
//! cargo run --release --example streaming_service
//! ```

use std::time::Duration;

use diversified_topk::datagen::synthetic::{synthetic_graph, SyntheticConfig};
use diversified_topk::datagen::update_stream::{update_stream, UpdateStreamConfig};
use diversified_topk::pattern::builder::label_pattern;
use diversified_topk::prelude::*;

// The synthetic generator's 15-label alphabet, read as job titles.
const PM: u32 = 0; // project manager (output role)
const DB: u32 = 1; // database developer
const PRG: u32 = 2; // programmer
const ST: u32 = 3; // software tester

fn describe(update: &AnswerUpdate, who: &str) {
    let ranked: Vec<String> =
        update.topk.iter().map(|m| format!("v{}(δr={})", m.node, m.relevance)).collect();
    println!(
        "   [{who}] v{} @ seq {}: [{}]  (+{} −{} ~{})",
        update.version,
        update.seq,
        ranked.join(", "),
        update.diff.entered.len(),
        update.diff.left.len(),
        update.diff.reordered.len()
    );
}

fn main() {
    // A paper-style cyclic collaboration network.
    let g = synthetic_graph(&SyntheticConfig::paper(2_000, 8_000, 42));
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    println!(
        "collaboration network: {} live nodes, {} edges — service anchored at seq {}",
        svc.registry().graph().live_node_count(),
        svc.registry().graph().edge_count(),
        svc.seq()
    );

    // Two subscribers: top managers by relevance, and a diversified QA
    // panel (λ = 0.3 trades relevance for coverage).
    let managers = svc
        .subscribe(
            label_pattern(&[PM, DB, PRG], &[(0, 1), (1, 2)], 0).unwrap(),
            IncrementalConfig::new(3),
            NotifyMode::Relevance,
        )
        .unwrap();
    let qa = svc
        .subscribe(
            label_pattern(&[PM, ST, PRG], &[(0, 1), (1, 2), (2, 0)], 0).unwrap(),
            IncrementalConfig::new(3).lambda(0.3),
            NotifyMode::Diversified,
        )
        .unwrap();
    println!("\n── bootstrap answers (queued at subscribe)");
    let bootstrap = managers.try_recv().unwrap();
    let star = bootstrap.topk.first().map(|m| m.node);
    describe(&bootstrap, "managers ");
    describe(&qa.try_recv().unwrap(), "qa panel ");

    // The service loop takes over; a consumer thread watches both queues.
    let handle = ServiceHandle::spawn(svc);
    let consumer = std::thread::spawn(move || {
        let mut seen = 0usize;
        loop {
            let mut any = false;
            if let Some(u) = managers.recv_timeout(Duration::from_millis(50)) {
                describe(&u, "managers ");
                seen += 1;
                any = true;
            }
            if let Some(u) = qa.recv_timeout(Duration::from_millis(50)) {
                describe(&u, "qa panel ");
                seen += 1;
                any = true;
            }
            if !any && (managers.is_closed() || qa.is_closed()) {
                return (seen, managers, qa);
            }
        }
    });

    // Stream churn through the service loop.
    println!("\n── streaming 8 update batches (40 ops each) through the loop");
    for delta in update_stream(&g, &UpdateStreamConfig::new(8, 40, 7)) {
        handle.submit(delta);
    }
    let head = handle.seq(); // barrier: everything applied
    println!("   …ingested up to seq {head}");

    // A targeted mutation that must wake the managers subscription: the
    // star manager leaves the company.
    if let Some(star) = star {
        println!("\n── v{star} (the top manager) departs — one push, no polling");
        let report = handle.ingest(GraphDelta::new().remove_node(star)).unwrap();
        println!(
            "   seq {}: {} pattern(s) touched, {} subscription(s) notified",
            report.seq, report.touched, report.notified
        );
        std::thread::sleep(Duration::from_millis(120)); // let the consumer print
    }

    // A late joiner recovers purely from the serialized log.
    let (persisted, join_seq) = handle.with(|svc| (svc.log().to_json_lines(), svc.seq()));
    let log = DeltaLog::from_json_lines(&persisted).unwrap();
    let mut joiner = AnswerService::at_offset(log.base(), log.base_seq(), ServiceConfig::default());
    let j_managers = joiner
        .subscribe(
            label_pattern(&[PM, DB, PRG], &[(0, 1), (1, 2)], 0).unwrap(),
            IncrementalConfig::new(3),
            NotifyMode::Relevance,
        )
        .unwrap();
    let replayed = joiner.catch_up(&log).unwrap();
    let live = handle.with(|svc| svc.current(svc.registry().pattern_ids()[0]).unwrap());
    let joined = joiner.current(j_managers.pattern()).unwrap();
    println!(
        "\n── late joiner replayed {replayed} batches from the log (seq {} → {join_seq})",
        log.base_seq()
    );
    println!(
        "   live answer   {:?}\n   joiner answer {:?}  — identical: {}",
        live.nodes(),
        joined.nodes(),
        live.matches == joined.matches
    );

    // The answer timeline: versioned, queryable at any retained offset.
    let id = j_managers.pattern();
    println!("\n── manager answers along the timeline (joiner's view)");
    for seq in [join_seq / 2, join_seq] {
        match joiner.query_at(id, seq) {
            Ok(v) => println!("   seq {seq}: version {} answer {:?}", v.version, v.nodes()),
            Err(e) => println!("   seq {seq}: {e}"),
        }
    }

    let svc = handle.shutdown();
    let stats = svc.stats().clone();
    let hit_rate = svc.registry_stats().shared_index_hit_rate();
    let fanout = svc.registry_stats().ops_replayed + svc.registry_stats().ops_skipped;
    drop(svc); // closes the queues; the consumer drains out and exits
    let (seen, _m, _q) = consumer.join().unwrap();

    println!("\n── service stats");
    println!(
        "   batches {}  pushed {}  suppressed {}  coalesced {}  consumer saw {} updates",
        stats.batches, stats.updates_pushed, stats.suppressed, stats.updates_coalesced, seen
    );
    println!("   shared-index skip rate {:.1}% across {fanout} fan-out edges", 100.0 * hit_rate);
}
