//! The Fig. 4 case study: diversified video search on a YouTube-like graph.
//!
//! Issues the paper's queries Q1 (cyclic: music ⇄ entertainment, both
//! pointing at heavily-watched videos) and Q2 (DAG: comedy →
//! entertainment → popular) against the YouTube emulator, then contrasts
//! the top-2 *relevant* matches with the top-2 *diversified* matches — the
//! paper's observation that diversification swaps one of the relevance winners for
//! a dissimilar alternative.
//!
//! Run with: `cargo run --release --example video_recommendation`

use diversified_topk::datagen::datasets::{youtube_like, Scale};
use diversified_topk::datagen::patterns::{q1_youtube, q2_youtube};
use diversified_topk::prelude::*;

fn main() {
    let g = youtube_like(Scale::Small, 11);
    println!("youtube-like graph: {} videos, {} recommendations", g.node_count(), g.edge_count());

    for (name, q) in [("Q1 (cyclic)", q1_youtube()), ("Q2 (DAG)", q2_youtube())] {
        println!("\n=== {name}: output node `{}` ===", q.display(q.output()));
        let sim = compute_simulation(&g, &q);
        let mu = sim.output_matches(&q);
        println!("|Mu| = {} matching videos", mu.len());
        if mu.is_empty() {
            println!("(no match at this scale — try Scale::Medium)");
            continue;
        }

        let rel = top_k(&g, &q, &TopKConfig::new(2));
        println!("top-2 relevant:");
        for m in &rel.matches {
            print_video(&g, m.node, m.relevance);
        }

        let div = top_k_diversified(&g, &q, &DivConfig::new(2, 0.5));
        println!("top-2 diversified (λ = 0.5), F = {:.4}:", div.f_value);
        for m in &div.matches {
            print_video(&g, m.node, m.relevance);
        }

        let dh = top_k_diversified_heuristic(&g, &q, &DivConfig::new(2, 0.5));
        println!(
            "TopKDH picks {:?} with F = {:.4} (inspected {}/{} candidates)",
            dh.nodes(),
            dh.f_value,
            dh.stats.inspected_matches,
            dh.stats.output_candidates
        );
    }
}

fn print_video(g: &DiGraph, v: NodeId, relevance: u64) {
    let attrs = g.attributes(v).expect("emulator attaches attributes");
    let cat = attrs.get("category").and_then(|a| a.as_str()).unwrap_or("?");
    let views = attrs.get("views").and_then(|a| a.as_f64()).unwrap_or(0.0);
    let rate = attrs.get("rate").and_then(|a| a.as_f64()).unwrap_or(0.0);
    println!(
        "  video #{v:<7} category={cat:<14} views={views:<8} rate={rate:<3}  δr = {relevance}"
    );
}
