//! Multiple output nodes (the Section 2.2 extension).
//!
//! The Fig. 1 query marked `PM` as the single output; here we ask for the
//! top matches of *every role* in the same pattern — the paper notes its
//! results "extend to patterns with multiple output nodes" that need not be
//! roots.
//!
//! Run with: `cargo run --example multi_output`

use diversified_topk::core::top_k_multi;
use diversified_topk::datagen::{fig1_graph, fig1_pattern};
use diversified_topk::prelude::*;

fn main() {
    let g = fig1_graph();
    let q = fig1_pattern();

    let outputs: Vec<_> = q.nodes().collect();
    let results = top_k_multi(&g, &q, &outputs, &TopKConfig::new(3));

    println!("top-3 matches per pattern role on the Fig. 1 network:\n");
    for (u, r) in results {
        let role = q.display(u);
        let rendered: Vec<String> = r
            .matches
            .iter()
            .map(|m| format!("{} (δr={})", g.display(m.node), m.relevance))
            .collect();
        println!(
            "  {role:<4} → [{}]{}",
            rendered.join(", "),
            if r.stats.early_terminated { "  (early termination)" } else { "" }
        );
    }

    println!(
        "\nNote: non-root outputs (DB, PRG, ST) still honour the global\n\
         match-existence rule — if any pattern node had no match at all,\n\
         every output's result would be empty."
    );
}
