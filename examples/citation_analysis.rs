//! DAG-pattern analytics on a citation-like network.
//!
//! Citation graphs are DAGs (papers cite strictly older papers), which is
//! exactly the setting of the paper's `TopKDAG` (Section 4.1). This example
//! extracts influence patterns from the emulated network, compares
//! `TopKDAG` with the find-everything `Match` baseline, and reports the
//! match-ratio reduction the paper measures in Exp-1.
//!
//! Run with: `cargo run --release --example citation_analysis`

use diversified_topk::datagen::datasets::{citation_like, Scale};
use diversified_topk::datagen::patterns::{extract_pattern, PatternGenConfig};
use diversified_topk::prelude::*;
use std::time::Instant;

fn main() {
    let g = citation_like(Scale::Small, 21);
    println!("citation-like DAG: {} papers, {} citations", g.node_count(), g.edge_count());

    // Influence pattern: an (area-labeled) paper whose citation cone spans
    // several specific areas — extracted from the graph so matches exist.
    let Some(q) = extract_pattern(&g, &PatternGenConfig::new(4, 6, true, 3)) else {
        println!("no (4,6) DAG pattern found at this scale");
        return;
    };
    println!(
        "pattern: {} nodes / {} edges, output label {:?}, height {}",
        q.node_count(),
        q.edge_count(),
        q.predicate(q.output()),
        q.height()
    );

    let k = 10;
    let t = Instant::now();
    let base = top_k_by_match(&g, &q, &TopKConfig::new(k));
    let t_match = t.elapsed();
    let total = base.stats.total_matches.unwrap();

    let t = Instant::now();
    let fast = top_k_dag(&g, &q, &TopKConfig::new(k));
    let t_dag = t.elapsed();

    println!("\n|Mu| = {total} matching papers");
    println!("Match   : top-{k} δr total = {:<6} time = {t_match:?}", base.total_relevance());
    println!(
        "TopKDAG : top-{k} δr total = {:<6} time = {t_dag:?}  MR = {:.2}  early: {}",
        fast.total_relevance(),
        fast.stats.match_ratio(total),
        fast.stats.early_terminated
    );
    assert_eq!(base.total_relevance(), fast.total_relevance());

    println!("\nmost influential matches (by citation-cone reach):");
    for m in fast.matches.iter().take(5) {
        let year = g
            .attributes(m.node)
            .and_then(|a| a.get("year").and_then(|y| y.as_f64()))
            .unwrap_or(0.0);
        println!("  paper #{:<7} ({year})  δr = {}", m.node, m.relevance);
    }
}
