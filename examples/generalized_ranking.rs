//! Generalized ranking functions (Section 3.4, Propositions 4 & 6).
//!
//! Runs the Fig. 1 query under every relevance function of the paper's
//! table — relevant-set size, preference attachment, common neighbours,
//! Jaccard coefficient — and every distance function — Jaccard,
//! neighbourhood diversity, distance-based diversity — showing that the
//! same algorithms serve all of them.
//!
//! Run with: `cargo run --example generalized_ranking`

use diversified_topk::core::generalized::{
    generalized_top_k, generalized_top_k_diversified, generalized_top_k_full,
};
use diversified_topk::datagen::{fig1_graph, fig1_pattern};
use diversified_topk::prelude::*;
use diversified_topk::ranking::distance::{
    DistanceBasedDiversity, DistanceFn, JaccardDistance, NeighborhoodDiversity,
};
use diversified_topk::ranking::relevance::{
    CommonNeighbors, JaccardCoefficient, PreferenceAttachment, RelevanceFn, RelevantSetSize,
};

fn main() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let cfg = TopKConfig::new(2);

    println!("=== generalized topKP (top-2 PMs per relevance function) ===");
    let fns: [&dyn RelevanceFn; 4] =
        [&RelevantSetSize, &PreferenceAttachment, &CommonNeighbors, &JaccardCoefficient];
    for f in fns {
        let early = generalized_top_k(&g, &q, &cfg, f);
        let full = generalized_top_k_full(&g, &q, &cfg, f);
        let show = |m: &diversified_topk::core::generalized::ScoredMatch| {
            format!("{}:{:.3}", g.display(m.node), m.score)
        };
        println!(
            "  {:<22} early-term: [{}]  exhaustive: [{}]",
            f.name(),
            early.matches.iter().map(show).collect::<Vec<_>>().join(", "),
            full.matches.iter().map(show).collect::<Vec<_>>().join(", "),
        );
    }

    println!("\n=== generalized topKDP (top-2 diversified per distance function) ===");
    let nd = NeighborhoodDiversity { node_count: g.node_count() };
    let db = DistanceBasedDiversity::new(&g);
    let dists: [(&str, &dyn DistanceFn); 3] =
        [("jaccard", &JaccardDistance), ("neighborhood", &nd), ("distance-based", &db)];
    for (name, d) in dists {
        let r = generalized_top_k_diversified(&g, &q, &DivConfig::new(2, 0.5), d);
        let names: Vec<String> = r.nodes().iter().map(|&v| g.display(v)).collect();
        println!("  {:<22} {names:?}  F = {:.4}", name, r.f_value);
    }
}
